//! Beyond-paper extension: a fine-grained partition-size sweep validating
//! §8's closing insight — "for less sparse (density > 0.1) applications
//! such as the inference of neural networks, optimizations beyond simple
//! partitioning of size 8×8 or at most 16×16 hurt the performance even
//! though it might help reduce the memory footprint."

use crate::measure::ExperimentConfig;
use crate::table::{eng, f3, TextTable};
use crate::CampaignError;
use copernicus_workloads::Workload;
use sparsemat::FormatKind;

/// The extended partition sweep (the paper stops at 32).
pub const SWEEP_SIZES: [usize; 5] = [4, 8, 16, 32, 64];

/// The formats carried through the sweep.
pub const SWEEP_FORMATS: [FormatKind; 4] = [
    FormatKind::Csr,
    FormatKind::Bcsr,
    FormatKind::Coo,
    FormatKind::Ell,
];

/// The two sweep workloads: a sparse (0.01) and an NN-dense (0.3) random
/// matrix.
pub fn sweep_workloads(cfg: &ExperimentConfig) -> [Workload; 2] {
    [
        Workload::Random {
            n: cfg.sweep_dim,
            density: 0.01,
        },
        Workload::Random {
            n: cfg.sweep_dim,
            density: 0.3,
        },
    ]
}

/// One point of the sweep.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PartitionSweepRow {
    /// Matrix density (0.3 represents NN-inference territory).
    pub density: f64,
    /// Partition size.
    pub partition_size: usize,
    /// Format.
    pub format: FormatKind,
    /// End-to-end seconds.
    pub total_seconds: f64,
    /// Decompression overhead σ.
    pub sigma: f64,
    /// Bytes transferred (the "memory footprint" side of the §8 trade-off).
    pub total_bytes: u64,
}

/// Runs the sweep over a sparse (0.01) and an NN-dense (0.3) random matrix.
///
/// # Errors
///
/// Propagates platform failures.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<PartitionSweepRow>, CampaignError> {
    run_with(cfg, &mut crate::Instruments::none())
}

/// Like [`run`], with campaign instruments attached (trace sink, metrics
/// registry, progress reporting).
///
/// # Errors
///
/// See [`run`].
pub fn run_with(
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<PartitionSweepRow>, CampaignError> {
    run_on(&crate::CampaignRunner::sequential(), cfg, instruments)
}

/// Like [`run_with`], executed on `runner`: the grid runs across the
/// runner's worker threads and overlapping cells are served from its
/// memoization cache, with rows identical — order and bytes — to the
/// sequential path.
///
/// # Errors
///
/// See [`run`].
pub fn run_on(
    runner: &crate::CampaignRunner,
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<PartitionSweepRow>, CampaignError> {
    let ms = runner.characterize_with(
        &sweep_workloads(cfg),
        &SWEEP_FORMATS,
        &SWEEP_SIZES,
        cfg,
        instruments,
    )?;
    Ok(ms
        .iter()
        .map(|m| PartitionSweepRow {
            density: m.density,
            partition_size: m.partition_size,
            format: m.format,
            total_seconds: m.total_seconds(),
            sigma: m.sigma(),
            total_bytes: m.report.total_bytes,
        })
        .collect())
}

/// The reproducibility manifest for this figure's campaign.
pub fn manifest(cfg: &ExperimentConfig) -> copernicus_telemetry::RunManifest {
    crate::manifest_for(cfg, &sweep_workloads(cfg), &SWEEP_FORMATS, &SWEEP_SIZES)
        .with_note("figure=partition_sweep")
}

/// Renders the rows as an aligned table.
pub fn render(rows: &[PartitionSweepRow]) -> String {
    let mut t = TextTable::new(&["density", "p", "format", "time_s", "sigma", "bytes"]);
    for r in rows {
        t.row(&[
            format!("{:.2}", r.density),
            r.partition_size.to_string(),
            r.format.to_string(),
            format!("{:.6}", r.total_seconds),
            f3(r.sigma),
            eng(r.total_bytes as f64),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentConfig;

    fn rows() -> Vec<PartitionSweepRow> {
        run(&ExperimentConfig::quick()).unwrap()
    }

    fn time(rows: &[PartitionSweepRow], d_lo: f64, f: FormatKind, p: usize) -> f64 {
        rows.iter()
            .find(|r| r.density > d_lo && r.format == f && r.partition_size == p)
            .unwrap()
            .total_seconds
    }

    #[test]
    fn covers_two_densities_four_formats_five_sizes() {
        assert_eq!(rows().len(), 2 * 4 * 5);
    }

    fn sigma(rows: &[PartitionSweepRow], d_lo: f64, f: FormatKind, p: usize) -> f64 {
        rows.iter()
            .find(|r| r.density > d_lo && r.format == f && r.partition_size == p)
            .unwrap()
            .sigma
    }

    #[test]
    fn large_partitions_blow_up_overhead_on_dense_workloads() {
        // The §8 claim, in the metric that drives it: at density 0.3 the
        // decompression overhead σ grows steeply past p = 16 for the
        // element-wise formats — every extra partition doubling buys less
        // dense-equivalent compute than it adds decompression work. (In
        // this model the *absolute* time still creeps down because the
        // wider engine amortizes; see EXPERIMENTS.md.)
        let rows = rows();
        for f in [FormatKind::Csr, FormatKind::Coo] {
            let s8 = sigma(&rows, 0.1, f, 8);
            let s64 = sigma(&rows, 0.1, f, 64);
            assert!(
                s64 > 1.5 * s8,
                "{f}: sigma p=64 ({s64}) should dwarf p=8 ({s8}) at density 0.3"
            );
            // Absolute σ past 16 exceeds the dense baseline outright.
            assert!(sigma(&rows, 0.1, f, 32) > 1.0, "{f}");
        }
        // At density 0.01 the growth is far milder — the effect is a
        // dense-workload problem, exactly as §8 frames it.
        for f in [FormatKind::Csr, FormatKind::Coo] {
            let lo8 = sigma(&rows, -1.0, f, 8);
            let lo64 = sigma(&rows, -1.0, f, 64);
            assert!(lo64 < 1.5, "{f}: sparse sigma at p=64 is {lo64}");
            let _ = lo8;
        }
    }

    #[test]
    fn times_are_recorded_for_all_points() {
        let rows = rows();
        assert!(time(&rows, 0.1, FormatKind::Csr, 16) > 0.0);
        assert!(time(&rows, -1.0, FormatKind::Coo, 4) > 0.0);
    }

    #[test]
    fn footprint_shrinks_even_when_time_grows() {
        // The other half of the §8 sentence: bigger partitions do help the
        // memory footprint (fewer per-partition offset arrays).
        let rows = rows();
        let bytes = |p: usize| {
            rows.iter()
                .find(|r| r.density > 0.1 && r.format == FormatKind::Csr && r.partition_size == p)
                .unwrap()
                .total_bytes
        };
        assert!(bytes(64) <= bytes(4));
    }

    #[test]
    fn sigma_stays_positive_throughout() {
        for r in rows() {
            assert!(r.sigma > 0.0, "{r:?}");
        }
    }
}
