//! Table 2 — FPGA resource utilization and dynamic power per format and
//! partition size, plus the §6.4 static-power classes.

use crate::table::TextTable;
use copernicus_hls::{power, resources};
use sparsemat::FormatKind;

/// One row of Table 2 (a format at one partition size).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Table2Row {
    /// Format.
    pub format: FormatKind,
    /// Partition size.
    pub partition_size: usize,
    /// 18-kbit BRAM blocks.
    pub bram_18k: f64,
    /// Flip-flops ×1000.
    pub ff_k: f64,
    /// LUTs ×1000.
    pub lut_k: f64,
    /// Dynamic power in watts.
    pub dynamic_power_w: f64,
    /// Static power in watts (§6.4 gives two design classes).
    pub static_power_w: f64,
}

/// Produces Table 2 for the given partition sizes (the paper's 8/16/32 by
/// default; other sizes are model extrapolations).
pub fn run(partition_sizes: &[usize]) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for format in super::FIGURE_FORMATS {
        for &p in partition_sizes {
            // Every FIGURE_FORMATS entry carries resource and power models;
            // a format without them simply contributes no row.
            let (Some(r), Some(dynamic_power_w), Some(static_power_w)) = (
                resources::estimate(format, p),
                power::dynamic_power(format, p),
                power::static_power(format),
            ) else {
                continue;
            };
            rows.push(Table2Row {
                format,
                partition_size: p,
                bram_18k: r.bram_18k,
                ff_k: r.ff_k,
                lut_k: r.lut_k,
                dynamic_power_w,
                static_power_w,
            });
        }
    }
    rows
}

/// Renders the rows in the paper's layout (one line per format, columns
/// grouped by partition size).
pub fn render(rows: &[Table2Row]) -> String {
    let sizes: Vec<usize> = {
        let mut s: Vec<usize> = rows.iter().map(|r| r.partition_size).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    let mut header: Vec<String> = vec!["format".into()];
    for group in ["BRAM_18K", "FF(k)", "LUT(k)", "DynW"] {
        for p in &sizes {
            header.push(format!("{group}@{p}"));
        }
    }
    header.push("StaticW".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&header_refs);

    let formats: Vec<FormatKind> = {
        let mut f: Vec<FormatKind> = rows.iter().map(|r| r.format).collect();
        let order = super::FIGURE_FORMATS;
        f.sort_by_key(|k| order.iter().position(|o| o == k));
        f.dedup();
        f
    };
    for format in formats {
        // A cell absent from a partial grid renders as "-" instead of
        // aborting the whole table.
        let cell = |p: usize| -> Option<&Table2Row> {
            rows.iter()
                .find(|r| r.format == format && r.partition_size == p)
        };
        let fmt_cell = |p: usize, f: &dyn Fn(&Table2Row) -> String| -> String {
            cell(p).map_or_else(|| "-".to_string(), f)
        };
        let mut row: Vec<String> = vec![format.to_string()];
        for &p in &sizes {
            row.push(fmt_cell(p, &|c| format!("{:.0}", c.bram_18k)));
        }
        for &p in &sizes {
            row.push(fmt_cell(p, &|c| format!("{:.1}", c.ff_k)));
        }
        for &p in &sizes {
            row.push(fmt_cell(p, &|c| format!("{:.1}", c.lut_k)));
        }
        for &p in &sizes {
            row.push(fmt_cell(p, &|c| format!("{:.2}", c.dynamic_power_w)));
        }
        row.push(fmt_cell(sizes[0], &|c| format!("{:.3}", c.static_power_w)));
        t.row(&row);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "Device totals: BRAM_18K {}  FF {}k  LUT {}k\n",
        resources::DEVICE_TOTALS.bram_18k,
        resources::DEVICE_TOTALS.ff_k,
        resources::DEVICE_TOTALS.lut_k
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_reproduce_table2_exactly() {
        let rows = run(&[8, 16, 32]);
        assert_eq!(rows.len(), 8 * 3);
        let lil16 = rows
            .iter()
            .find(|r| r.format == FormatKind::Lil && r.partition_size == 16)
            .unwrap();
        assert_eq!(lil16.bram_18k, 4.0);
        assert_eq!(lil16.ff_k, 5.8);
        assert_eq!(lil16.lut_k, 2.7);
        assert_eq!(lil16.dynamic_power_w, 0.08);
        assert_eq!(lil16.static_power_w, 0.121);
    }

    #[test]
    fn render_has_one_line_per_format_plus_totals() {
        let s = render(&run(&[8, 16, 32]));
        // header + rule + 8 formats + device totals line
        assert_eq!(s.lines().count(), 11);
        assert!(s.contains("DENSE"));
        assert!(s.contains("Device totals"));
    }

    #[test]
    fn works_for_non_paper_sizes_too() {
        let rows = run(&[12, 24]);
        assert_eq!(rows.len(), 16);
        for r in rows {
            assert!(r.bram_18k > 0.0);
        }
    }
}
