//! Fig. 9 — throughput vs total processing time for an `n×n` matrix per
//! format, with one line per partition size (the paper draws thicker lines
//! for larger partitions) and density as the parameter along each line.

use crate::measure::{ExperimentConfig, Measurement};
use crate::table::{eng, TextTable};
use crate::CampaignError;
use copernicus_workloads::Workload;
use sparsemat::FormatKind;

/// One point along a Fig.-9 line.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig09Row {
    /// Format (sub-figure a–g).
    pub format: FormatKind,
    /// Partition size (line thickness).
    pub partition_size: usize,
    /// Density of the random matrix at this point.
    pub density: f64,
    /// Total time to process the matrix, in seconds.
    pub total_seconds: f64,
    /// Throughput in bytes per second.
    pub throughput_bps: f64,
}

/// Runs the Fig.-9 campaign: the random density sweep at `cfg.sweep_dim`
/// (the paper's 8000×8000) across formats and partition sizes.
///
/// # Errors
///
/// Propagates platform failures.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<Fig09Row>, CampaignError> {
    run_with(cfg, &mut crate::Instruments::none())
}

/// Like [`run`], with campaign instruments attached (trace sink, metrics
/// registry, progress reporting).
///
/// # Errors
///
/// See [`run`].
pub fn run_with(
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Fig09Row>, CampaignError> {
    run_on(&crate::CampaignRunner::sequential(), cfg, instruments)
}

/// Like [`run_with`], executed on `runner`: the grid runs across the
/// runner's worker threads and overlapping cells are served from its
/// memoization cache, with rows identical — order and bytes — to the
/// sequential path.
///
/// # Errors
///
/// See [`run`].
pub fn run_on(
    runner: &crate::CampaignRunner,
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Fig09Row>, CampaignError> {
    let workloads = Workload::paper_random_sweep(cfg.sweep_dim);
    let ms = runner.characterize_with(
        &workloads,
        &super::FIGURE_FORMATS,
        &super::FIGURE_PARTITION_SIZES,
        cfg,
        instruments,
    )?;
    Ok(from_measurements(&ms))
}

/// Converts a campaign's random-class measurements into Fig.-9 points.
pub fn from_measurements(ms: &[Measurement]) -> Vec<Fig09Row> {
    ms.iter()
        .filter(|m| m.class == copernicus_workloads::WorkloadClass::Random)
        .map(|m| Fig09Row {
            format: m.format,
            partition_size: m.partition_size,
            density: m.density,
            total_seconds: m.total_seconds(),
            throughput_bps: m.throughput(),
        })
        .collect()
}

/// The reproducibility manifest for this figure's campaign.
pub fn manifest(cfg: &ExperimentConfig) -> copernicus_telemetry::RunManifest {
    crate::manifest_for(
        cfg,
        &Workload::paper_random_sweep(cfg.sweep_dim),
        &super::FIGURE_FORMATS,
        &super::FIGURE_PARTITION_SIZES,
    )
    .with_note("figure=fig09")
}

/// Renders the rows as an aligned table.
pub fn render(rows: &[Fig09Row]) -> String {
    let mut t = TextTable::new(&["format", "p", "density", "time_s", "throughput_B/s"]);
    for r in rows {
        t.row(&[
            r.format.to_string(),
            r.partition_size.to_string(),
            format!("{:.4}", r.density),
            format!("{:.6}", r.total_seconds),
            eng(r.throughput_bps),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Fig09Row> {
        run(&ExperimentConfig::quick()).unwrap()
    }

    fn max_throughput(rows: &[Fig09Row], f: FormatKind) -> f64 {
        rows.iter()
            .filter(|r| r.format == f)
            .map(|r| r.throughput_bps)
            .fold(0.0, f64::max)
    }

    #[test]
    fn covers_sweep_formats_sizes() {
        assert_eq!(rows().len(), 8 * 8 * 3);
    }

    #[test]
    fn bcsr_lil_dia_reach_the_highest_throughput() {
        // §6.3: "BCSR, LIL, and DIA reach a higher throughput compared to
        // the other four formats."
        let rows = rows();
        let high = [FormatKind::Bcsr, FormatKind::Lil, FormatKind::Dia]
            .iter()
            .map(|&f| max_throughput(&rows, f))
            .fold(0.0, f64::max);
        for f in [FormatKind::Csr, FormatKind::Csc, FormatKind::Coo] {
            assert!(
                high > max_throughput(&rows, f),
                "{f} outruns the BCSR/LIL/DIA group"
            );
        }
    }

    #[test]
    fn larger_partitions_raise_throughput_for_most_formats() {
        // §6.3: "for all formats but CSC, increasing partition size results
        // in higher throughput."
        let rows = rows();
        for f in [
            FormatKind::Bcsr,
            FormatKind::Lil,
            FormatKind::Ell,
            FormatKind::Dia,
        ] {
            let t8: f64 = rows
                .iter()
                .filter(|r| r.format == f && r.partition_size == 8)
                .map(|r| r.throughput_bps)
                .fold(0.0, f64::max);
            let t32: f64 = rows
                .iter()
                .filter(|r| r.format == f && r.partition_size == 32)
                .map(|r| r.throughput_bps)
                .fold(0.0, f64::max);
            assert!(t32 > t8 * 0.9, "{f}: p=8 {t8} vs p=32 {t32}");
        }
    }

    #[test]
    fn time_grows_with_density_for_every_format() {
        let rows = rows();
        for f in super::super::FIGURE_FORMATS {
            let sparse: f64 = rows
                .iter()
                .filter(|r| r.format == f && r.partition_size == 16 && r.density <= 0.001)
                .map(|r| r.total_seconds)
                .sum();
            let dense: f64 = rows
                .iter()
                .filter(|r| r.format == f && r.partition_size == 16 && r.density >= 0.3)
                .map(|r| r.total_seconds)
                .sum();
            assert!(dense > sparse, "{f}");
        }
    }
}
