//! Fig. 6 — σ of the seven formats on band matrices as the width sweeps
//! from 1 (pure diagonal) to 64, partition size 16.

use crate::measure::ExperimentConfig;
use crate::table::{f3, TextTable};
use crate::CampaignError;
use copernicus_workloads::Workload;
use sparsemat::FormatKind;

/// One bar of Fig. 6.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig06Row {
    /// Band width `k`.
    pub width: usize,
    /// Format.
    pub format: FormatKind,
    /// Decompression overhead σ.
    pub sigma: f64,
}

/// Runs Fig. 6 at partition size 16 over the paper's width sweep.
///
/// # Errors
///
/// Propagates platform failures.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<Fig06Row>, CampaignError> {
    run_with(cfg, &mut crate::Instruments::none())
}

/// Like [`run`], with campaign instruments attached (trace sink, metrics
/// registry, progress reporting).
///
/// # Errors
///
/// See [`run`].
pub fn run_with(
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Fig06Row>, CampaignError> {
    run_on(&crate::CampaignRunner::sequential(), cfg, instruments)
}

/// Like [`run_with`], executed on `runner`: the grid runs across the
/// runner's worker threads and overlapping cells are served from its
/// memoization cache, with rows identical — order and bytes — to the
/// sequential path.
///
/// # Errors
///
/// See [`run`].
pub fn run_on(
    runner: &crate::CampaignRunner,
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Fig06Row>, CampaignError> {
    let workloads = Workload::paper_band_sweep(cfg.sweep_dim);
    let ms = runner.characterize_with(
        &workloads,
        &super::FIGURE_FORMATS,
        &[super::DEFAULT_PARTITION],
        cfg,
        instruments,
    )?;
    Ok(workloads
        .iter()
        .zip(ms.chunks(super::FIGURE_FORMATS.len()))
        .flat_map(|(w, chunk)| {
            let width = match w {
                Workload::Band { width, .. } => *width,
                _ => unreachable!("band sweep only yields band workloads"),
            };
            chunk.iter().map(move |m| Fig06Row {
                width,
                format: m.format,
                sigma: m.sigma(),
            })
        })
        .collect())
}

/// The reproducibility manifest for this figure's campaign.
pub fn manifest(cfg: &ExperimentConfig) -> copernicus_telemetry::RunManifest {
    crate::manifest_for(
        cfg,
        &Workload::paper_band_sweep(cfg.sweep_dim),
        &super::FIGURE_FORMATS,
        &[super::DEFAULT_PARTITION],
    )
    .with_note("figure=fig06")
}

/// Renders the rows as an aligned table.
pub fn render(rows: &[Fig06Row]) -> String {
    let mut t = TextTable::new(&["width", "format", "sigma"]);
    for r in rows {
        t.row(&[r.width.to_string(), r.format.to_string(), f3(r.sigma)]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Fig06Row> {
        run(&ExperimentConfig::quick()).unwrap()
    }

    fn sigma(rows: &[Fig06Row], f: FormatKind, w: usize) -> f64 {
        rows.iter()
            .find(|r| r.format == f && r.width == w)
            .unwrap()
            .sigma
    }

    #[test]
    fn covers_width_sweep_times_formats() {
        assert_eq!(rows().len(), 6 * 8);
    }

    #[test]
    fn sigma_grows_with_band_width_for_tuple_formats() {
        // §6.1: σ increases with the width of band matrices, most
        // dramatically for COO, CSR and CSC.
        let rows = rows();
        for f in [FormatKind::Coo, FormatKind::Csr, FormatKind::Csc] {
            assert!(
                sigma(&rows, f, 64) > 2.0 * sigma(&rows, f, 2),
                "{f}: {} vs {}",
                sigma(&rows, f, 64),
                sigma(&rows, f, 2)
            );
        }
    }

    #[test]
    fn csc_is_tens_of_x_at_width_64() {
        // §6.1: CSC reaches up to 30× on band matrices.
        let worst = sigma(&rows(), FormatKind::Csc, 64);
        assert!(worst > 15.0, "CSC σ at width 64: {worst}");
    }

    #[test]
    fn bcsr_stays_moderate_across_widths() {
        // §6.1: "Seeking a relatively generic sparse format that can provide
        // moderate computation latency for random and structured matrices,
        // BCSR could be a fair option."
        let rows = rows();
        for w in [1, 2, 4, 16, 32, 64] {
            assert!(sigma(&rows, FormatKind::Bcsr, w) < 3.0, "width {w}");
        }
    }

    #[test]
    fn dia_overhead_grows_with_scattered_diagonals() {
        // §5.2: DIA's scan over stored diagonals makes wider bands costlier.
        let rows = rows();
        assert!(sigma(&rows, FormatKind::Dia, 64) > sigma(&rows, FormatKind::Dia, 1));
    }
}
