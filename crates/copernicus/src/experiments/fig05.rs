//! Fig. 5 — σ of the seven formats on random matrices as density sweeps
//! from 0.0001 to 0.5, partition size 16.

use crate::measure::ExperimentConfig;
use crate::table::{f3, TextTable};
use crate::CampaignError;
use copernicus_workloads::Workload;
use sparsemat::FormatKind;

/// One bar of Fig. 5.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig05Row {
    /// Requested density of the random matrix.
    pub density: f64,
    /// Format.
    pub format: FormatKind,
    /// Decompression overhead σ.
    pub sigma: f64,
}

/// Runs Fig. 5 at partition size 16 over the paper's density sweep.
///
/// # Errors
///
/// Propagates platform failures.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<Fig05Row>, CampaignError> {
    run_with(cfg, &mut crate::Instruments::none())
}

/// Like [`run`], with campaign instruments attached (trace sink, metrics
/// registry, progress reporting).
///
/// # Errors
///
/// See [`run`].
pub fn run_with(
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Fig05Row>, CampaignError> {
    run_on(&crate::CampaignRunner::sequential(), cfg, instruments)
}

/// Like [`run_with`], executed on `runner`: the grid runs across the
/// runner's worker threads and overlapping cells are served from its
/// memoization cache, with rows identical — order and bytes — to the
/// sequential path.
///
/// # Errors
///
/// See [`run`].
pub fn run_on(
    runner: &crate::CampaignRunner,
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Fig05Row>, CampaignError> {
    let workloads = Workload::paper_random_sweep(cfg.sweep_dim);
    let ms = runner.characterize_with(
        &workloads,
        &super::FIGURE_FORMATS,
        &[super::DEFAULT_PARTITION],
        cfg,
        instruments,
    )?;
    Ok(workloads
        .iter()
        .zip(ms.chunks(super::FIGURE_FORMATS.len()))
        .flat_map(|(w, chunk)| {
            // Report the *requested* density so the sweep axis is exact even
            // when rounding changes the generated nnz slightly.
            let density = match w {
                Workload::Random { density, .. } => *density,
                _ => unreachable!("random sweep only yields random workloads"),
            };
            chunk.iter().map(move |m| Fig05Row {
                density,
                format: m.format,
                sigma: m.sigma(),
            })
        })
        .collect())
}

/// The reproducibility manifest for this figure's campaign.
pub fn manifest(cfg: &ExperimentConfig) -> copernicus_telemetry::RunManifest {
    crate::manifest_for(
        cfg,
        &Workload::paper_random_sweep(cfg.sweep_dim),
        &super::FIGURE_FORMATS,
        &[super::DEFAULT_PARTITION],
    )
    .with_note("figure=fig05")
}

/// Renders the rows as an aligned table.
pub fn render(rows: &[Fig05Row]) -> String {
    let mut t = TextTable::new(&["density", "format", "sigma"]);
    for r in rows {
        t.row(&[
            format!("{:.4}", r.density),
            r.format.to_string(),
            f3(r.sigma),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Fig05Row> {
        run(&ExperimentConfig::quick()).unwrap()
    }

    fn sigma_at(rows: &[Fig05Row], format: FormatKind, lo: f64, hi: f64) -> f64 {
        rows.iter()
            .filter(|r| r.format == format && r.density >= lo && r.density <= hi)
            .map(|r| r.sigma)
            .fold(f64::NAN, f64::max)
    }

    #[test]
    fn sigma_rises_steeply_with_density_for_coo_csr_csc() {
        // §6.1: "although the σ of all formats increase with density [...]
        // it more dramatically increases for COO, CSR, and CSC."
        let rows = rows();
        for f in [FormatKind::Coo, FormatKind::Csr, FormatKind::Csc] {
            let sparse = sigma_at(&rows, f, 0.0, 0.01);
            let dense = sigma_at(&rows, f, 0.3, 0.5);
            assert!(dense > 2.0 * sparse, "{f}: {sparse} -> {dense}");
        }
    }

    #[test]
    fn csc_reaches_about_twenty_x_at_half_density() {
        // §6.1: CSC "leads to up to 21× slower computation" on random
        // matrices.
        let rows = rows();
        let worst = sigma_at(&rows, FormatKind::Csc, 0.5, 0.5);
        assert!(worst > 15.0 && worst < 30.0, "CSC σ at d=0.5: {worst}");
    }

    #[test]
    fn ell_sigma_is_the_flattest() {
        // ELL's compute is row-count proportional: its σ varies the least
        // over the density sweep.
        let rows = rows();
        let spread = |f: FormatKind| {
            let vals: Vec<f64> = rows
                .iter()
                .filter(|r| r.format == f)
                .map(|r| r.sigma)
                .collect();
            let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
            max / min
        };
        let ell = spread(FormatKind::Ell);
        for f in [FormatKind::Csr, FormatKind::Csc, FormatKind::Coo] {
            assert!(ell < spread(f), "{f} flatter than ELL");
        }
    }

    #[test]
    fn covers_the_full_sweep() {
        let rows = rows();
        assert_eq!(rows.len(), 8 * 8);
        assert!(render(&rows).contains("0.0001"));
    }
}
