//! Beyond-paper extension: the backend crossover. The paper's σ-vs-ratio
//! trade-off is measured on one device; this experiment re-costs the same
//! encoded streams on every hardware backend — the 250 MHz HLS pipeline,
//! the analytical cache-hierarchy CPU, and the per-partition heterogeneous
//! dispatcher — and asks where the winner flips: a format that saturates
//! the FPGA's narrow bus (dense, padded ELL) can be cheaper on the CPU's
//! wide DRAM path, while compute-bound formats (CSC) keep the FPGA ahead.
//! The dispatcher uses the paper's §4.2 balance ratio as its signal, so the
//! figure also shows how much of the gap per-partition dispatch recovers.

use crate::measure::ExperimentConfig;
use crate::table::{eng, f3, TextTable};
use crate::CampaignError;
use copernicus_hls::BackendKind;
use copernicus_workloads::Workload;
use sparsemat::FormatKind;

/// The structural formats compared: the paper's compressed baseline (CSR),
/// the worst-case decompressor (CSC, deeply compute-bound), and the
/// memory-bound extreme (dense).
pub const SPLIT_FORMATS: [FormatKind; 3] = [FormatKind::Csr, FormatKind::Csc, FormatKind::Dense];

/// Every hardware backend, `hls` first (the paper's baseline).
pub const SPLIT_BACKENDS: [BackendKind; 3] = BackendKind::ALL;

/// Partition size for the comparison (the paper's default).
pub const SPLIT_PARTITION: usize = super::DEFAULT_PARTITION;

/// The two split workloads, shared with the compound-scheme figure: a
/// banded matrix and a sparse random one.
pub fn split_workloads(cfg: &ExperimentConfig) -> [Workload; 2] {
    [
        Workload::Band {
            n: cfg.sweep_dim,
            width: 8,
        },
        Workload::Random {
            n: cfg.sweep_dim,
            density: 0.02,
        },
    ]
}

/// One (workload, backend, format) point of the comparison.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BackendSplitRow {
    /// Workload label (`w=<width>` or `d=<density>`).
    pub workload: String,
    /// Hardware backend the cell was costed on.
    pub backend: BackendKind,
    /// Structural format.
    pub format: FormatKind,
    /// Decompression overhead σ against that backend's dense baseline.
    pub sigma: f64,
    /// Mean per-partition mem/compute balance ratio (§4.2) — the hetero
    /// dispatch signal.
    pub balance_ratio: f64,
    /// Memory-read stage cycles.
    pub mem_cycles: u64,
    /// Compute stage cycles.
    pub compute_cycles: u64,
    /// End-to-end pipelined cycles (at the backend's clock).
    pub total_cycles: u64,
    /// End-to-end seconds — the cross-backend comparable axis.
    pub total_seconds: f64,
}

/// Runs the backend-split comparison.
///
/// # Errors
///
/// Propagates platform failures.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<BackendSplitRow>, CampaignError> {
    run_with(cfg, &mut crate::Instruments::none())
}

/// Like [`run`], with campaign instruments attached.
///
/// # Errors
///
/// See [`run`].
pub fn run_with(
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<BackendSplitRow>, CampaignError> {
    run_on(&crate::CampaignRunner::sequential(), cfg, instruments)
}

/// Like [`run_with`], executed on `runner`. One runner serves all three
/// backend sub-campaigns: the hardware config (backend included) is part
/// of every memo key, so the sub-campaigns never alias each other's cells
/// and the row stream is byte-identical at any job count.
///
/// # Errors
///
/// See [`run`].
pub fn run_on(
    runner: &crate::CampaignRunner,
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<BackendSplitRow>, CampaignError> {
    let mut rows = Vec::new();
    for backend in SPLIT_BACKENDS {
        let mut cfg_backend = cfg.clone();
        cfg_backend.hw.backend = backend;
        let ms = runner.characterize_with(
            &split_workloads(cfg),
            &SPLIT_FORMATS,
            &[SPLIT_PARTITION],
            &cfg_backend,
            instruments,
        )?;
        rows.extend(ms.iter().map(|m| BackendSplitRow {
            workload: m.workload.clone(),
            backend,
            format: m.format,
            sigma: m.sigma(),
            balance_ratio: m.report.balance_ratio,
            mem_cycles: m.report.total_mem_cycles,
            compute_cycles: m.report.total_compute_cycles,
            total_cycles: m.report.total_cycles,
            total_seconds: m.total_seconds(),
        }));
    }
    Ok(rows)
}

/// The reproducibility manifest for this figure's campaign.
pub fn manifest(cfg: &ExperimentConfig) -> copernicus_telemetry::RunManifest {
    let mut manifest = crate::manifest_for(
        cfg,
        &split_workloads(cfg),
        &SPLIT_FORMATS,
        &[SPLIT_PARTITION],
    )
    .with_note("figure=backend_split");
    manifest.notes.push(format!(
        "backends={}",
        SPLIT_BACKENDS.map(|b| b.to_string()).join(",")
    ));
    manifest
}

/// The fastest backend for each (workload, format) cell, in row order —
/// the crossover the figure is about.
pub fn winners(rows: &[BackendSplitRow]) -> Vec<(String, FormatKind, BackendKind)> {
    let mut out: Vec<(String, FormatKind, BackendKind)> = Vec::new();
    for r in rows {
        if out
            .iter()
            .any(|(w, f, _)| *w == r.workload && *f == r.format)
        {
            continue;
        }
        let best = rows
            .iter()
            .filter(|c| c.workload == r.workload && c.format == r.format)
            .min_by(|a, b| {
                a.total_seconds
                    .partial_cmp(&b.total_seconds)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        if let Some(best) = best {
            out.push((r.workload.clone(), r.format, best.backend));
        }
    }
    out
}

/// Renders the rows as an aligned table, with a winner summary below.
pub fn render(rows: &[BackendSplitRow]) -> String {
    let mut t = TextTable::new(&[
        "workload",
        "backend",
        "format",
        "sigma",
        "balance",
        "mem_cyc",
        "comp_cyc",
        "total_cyc",
        "time_s",
    ]);
    for r in rows {
        t.row(&[
            r.workload.clone(),
            r.backend.to_string(),
            r.format.to_string(),
            f3(r.sigma),
            f3(r.balance_ratio),
            eng(r.mem_cycles as f64),
            eng(r.compute_cycles as f64),
            eng(r.total_cycles as f64),
            format!("{:.6}", r.total_seconds),
        ]);
    }
    let mut out = t.render();
    out.push('\n');
    for (workload, format, backend) in winners(rows) {
        out.push_str(&format!("fastest {workload} {format}: {backend}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentConfig;

    fn rows() -> Vec<BackendSplitRow> {
        run(&ExperimentConfig::quick()).unwrap()
    }

    fn find(
        rows: &[BackendSplitRow],
        band: bool,
        backend: BackendKind,
        format: FormatKind,
    ) -> &BackendSplitRow {
        rows.iter()
            .find(|r| {
                r.workload.starts_with(if band { "w=" } else { "d=" })
                    && r.backend == backend
                    && r.format == format
            })
            .unwrap()
    }

    #[test]
    fn covers_every_workload_backend_format_cell() {
        assert_eq!(rows().len(), 2 * SPLIT_BACKENDS.len() * SPLIT_FORMATS.len());
    }

    #[test]
    fn hls_rows_match_the_default_backend() {
        // The hls sub-campaign must be bit-identical to a plain (default
        // config) characterization — the trait refactor changed nothing.
        let cfg = ExperimentConfig::quick();
        let rows = rows();
        let plain = crate::CampaignRunner::sequential()
            .characterize(
                &split_workloads(&cfg),
                &SPLIT_FORMATS,
                &[SPLIT_PARTITION],
                &cfg,
            )
            .unwrap();
        for m in &plain {
            let row = rows
                .iter()
                .find(|r| {
                    r.backend == BackendKind::Hls
                        && r.workload == m.workload
                        && r.format == m.format
                })
                .unwrap();
            assert_eq!(row.total_cycles, m.report.total_cycles, "{row:?}");
            assert_eq!(row.sigma, m.sigma(), "{row:?}");
        }
    }

    #[test]
    fn dense_is_memory_bound_on_hls_and_the_dispatcher_reacts() {
        let rows = rows();
        let hls = find(&rows, true, BackendKind::Hls, FormatKind::Dense);
        assert!(
            hls.balance_ratio > 1.0,
            "dense should be memory-bound on the FPGA: {hls:?}"
        );
        // Hetero reroutes exactly those partitions, shrinking the memory
        // stage relative to pure HLS (cycles share the 250 MHz domain).
        let het = find(&rows, true, BackendKind::Hetero, FormatKind::Dense);
        assert!(het.mem_cycles < hls.mem_cycles, "{het:?} vs {hls:?}");
    }

    #[test]
    fn the_crossover_exists() {
        // The figure's point: neither device wins everywhere.
        let rows = rows();
        let winning: std::collections::BTreeSet<String> = winners(&rows)
            .into_iter()
            .map(|(_, _, b)| b.to_string())
            .collect();
        assert!(
            winning.len() > 1,
            "expected a crossover, got one winner: {winning:?}"
        );
    }

    #[test]
    fn rows_are_deterministic() {
        assert_eq!(rows(), rows());
    }

    #[test]
    fn render_includes_the_winner_summary() {
        let rendered = render(&rows());
        assert!(rendered.contains("fastest"));
        assert!(rendered.contains("hls") || rendered.contains("cpu"));
    }
}
