//! Fig. 12 — average memory-bandwidth utilization per workload class and
//! partition size (higher is better).

use crate::measure::{ExperimentConfig, Measurement};
use crate::table::{f3, TextTable};
use crate::CampaignError;
use copernicus_workloads::WorkloadClass;
use sparsemat::FormatKind;

/// One bar of Fig. 12.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig12Row {
    /// Workload class.
    pub class: WorkloadClass,
    /// Partition size.
    pub partition_size: usize,
    /// Format.
    pub format: FormatKind,
    /// Mean bandwidth utilization over the class's workloads.
    pub mean_utilization: f64,
}

/// Aggregates measurements into Fig.-12 rows.
pub fn aggregate(ms: &[Measurement]) -> Vec<Fig12Row> {
    let mut rows = Vec::new();
    for class in [
        WorkloadClass::SuiteSparse,
        WorkloadClass::Random,
        WorkloadClass::Band,
    ] {
        for &p in &super::FIGURE_PARTITION_SIZES {
            for format in super::FIGURE_FORMATS {
                let utils: Vec<f64> = ms
                    .iter()
                    .filter(|m| m.class == class && m.partition_size == p && m.format == format)
                    .map(Measurement::bandwidth_utilization)
                    .collect();
                if utils.is_empty() {
                    continue;
                }
                rows.push(Fig12Row {
                    class,
                    partition_size: p,
                    format,
                    mean_utilization: utils.iter().sum::<f64>() / utils.len() as f64,
                });
            }
        }
    }
    rows
}

/// Runs the Fig.-12 campaign over all three workload classes.
///
/// # Errors
///
/// Propagates platform failures.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<Fig12Row>, CampaignError> {
    run_with(cfg, &mut crate::Instruments::none())
}

/// Like [`run`], with campaign instruments attached (trace sink, metrics
/// registry, progress reporting).
///
/// # Errors
///
/// See [`run`].
pub fn run_with(
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Fig12Row>, CampaignError> {
    run_on(&crate::CampaignRunner::sequential(), cfg, instruments)
}

/// Like [`run_with`], executed on `runner`: the grid runs across the
/// runner's worker threads and overlapping cells are served from its
/// memoization cache, with rows identical — order and bytes — to the
/// sequential path.
///
/// # Errors
///
/// See [`run`].
pub fn run_on(
    runner: &crate::CampaignRunner,
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Fig12Row>, CampaignError> {
    let ms = runner.characterize_with(
        &super::fig07::all_class_workloads(cfg),
        &super::FIGURE_FORMATS,
        &super::FIGURE_PARTITION_SIZES,
        cfg,
        instruments,
    )?;
    Ok(aggregate(&ms))
}

/// The reproducibility manifest for this figure's campaign.
pub fn manifest(cfg: &ExperimentConfig) -> copernicus_telemetry::RunManifest {
    crate::manifest_for(
        cfg,
        &super::fig07::all_class_workloads(cfg),
        &super::FIGURE_FORMATS,
        &super::FIGURE_PARTITION_SIZES,
    )
    .with_note("figure=fig12")
}

/// Renders the rows as an aligned table.
pub fn render(rows: &[Fig12Row]) -> String {
    let mut t = TextTable::new(&["class", "p", "format", "mean_bw_util"]);
    for r in rows {
        t.row(&[
            r.class.to_string(),
            r.partition_size.to_string(),
            r.format.to_string(),
            f3(r.mean_utilization),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Fig12Row> {
        aggregate(crate::testsupport::campaign())
    }

    fn util(rows: &[Fig12Row], c: WorkloadClass, p: usize, f: FormatKind) -> f64 {
        rows.iter()
            .find(|r| r.class == c && r.partition_size == p && r.format == f)
            .unwrap()
            .mean_utilization
    }

    #[test]
    fn covers_classes_sizes_formats() {
        assert_eq!(rows().len(), 3 * 3 * 8);
    }

    #[test]
    fn coo_is_one_third_in_every_cell() {
        for r in rows().iter().filter(|r| r.format == FormatKind::Coo) {
            assert!((r.mean_utilization - 1.0 / 3.0).abs() < 1e-9, "{r:?}");
        }
    }

    #[test]
    fn band_class_beats_suitesparse_for_structured_formats() {
        // §6.3: denser/structured matrices utilize bandwidth better than
        // extremely sparse ones for every format but COO.
        let rows = rows();
        for f in [
            FormatKind::Ell,
            FormatKind::Lil,
            FormatKind::Dia,
            FormatKind::Csr,
        ] {
            assert!(
                util(&rows, WorkloadClass::Band, 16, f)
                    > util(&rows, WorkloadClass::SuiteSparse, 16, f),
                "{f}"
            );
        }
    }

    #[test]
    fn dia_utilization_improves_with_partition_size_on_band() {
        // §6.3: "As partition size grows, this memory bandwidth utilization
        // approaches full utilization" (DIA on diagonal/band matrices).
        let rows = rows();
        assert!(
            util(&rows, WorkloadClass::Band, 32, FormatKind::Dia)
                > util(&rows, WorkloadClass::Band, 8, FormatKind::Dia)
        );
    }
}
