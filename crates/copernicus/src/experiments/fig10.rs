//! Fig. 10 — memory-bandwidth utilization on random matrices as density
//! sweeps from 0.0001 to 0.5, partition size 16 (higher is better).

use crate::measure::ExperimentConfig;
use crate::table::{f3, TextTable};
use crate::CampaignError;
use copernicus_workloads::Workload;
use sparsemat::FormatKind;

/// One bar of Fig. 10.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig10Row {
    /// Density of the random matrix.
    pub density: f64,
    /// Format.
    pub format: FormatKind,
    /// Useful bytes over all transferred bytes.
    pub bandwidth_utilization: f64,
}

/// Runs Fig. 10 at partition size 16 over the density sweep.
///
/// # Errors
///
/// Propagates platform failures.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<Fig10Row>, CampaignError> {
    run_with(cfg, &mut crate::Instruments::none())
}

/// Like [`run`], with campaign instruments attached (trace sink, metrics
/// registry, progress reporting).
///
/// # Errors
///
/// See [`run`].
pub fn run_with(
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Fig10Row>, CampaignError> {
    run_on(&crate::CampaignRunner::sequential(), cfg, instruments)
}

/// Like [`run_with`], executed on `runner`: the grid runs across the
/// runner's worker threads and overlapping cells are served from its
/// memoization cache, with rows identical — order and bytes — to the
/// sequential path.
///
/// # Errors
///
/// See [`run`].
pub fn run_on(
    runner: &crate::CampaignRunner,
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Fig10Row>, CampaignError> {
    let workloads = Workload::paper_random_sweep(cfg.sweep_dim);
    let ms = runner.characterize_with(
        &workloads,
        &super::FIGURE_FORMATS,
        &[super::DEFAULT_PARTITION],
        cfg,
        instruments,
    )?;
    Ok(workloads
        .iter()
        .zip(ms.chunks(super::FIGURE_FORMATS.len()))
        .flat_map(|(w, chunk)| {
            let density = match w {
                Workload::Random { density, .. } => *density,
                _ => unreachable!("random sweep only yields random workloads"),
            };
            chunk.iter().map(move |m| Fig10Row {
                density,
                format: m.format,
                bandwidth_utilization: m.bandwidth_utilization(),
            })
        })
        .collect())
}

/// The reproducibility manifest for this figure's campaign.
pub fn manifest(cfg: &ExperimentConfig) -> copernicus_telemetry::RunManifest {
    crate::manifest_for(
        cfg,
        &Workload::paper_random_sweep(cfg.sweep_dim),
        &super::FIGURE_FORMATS,
        &[super::DEFAULT_PARTITION],
    )
    .with_note("figure=fig10")
}

/// Renders the rows as an aligned table.
pub fn render(rows: &[Fig10Row]) -> String {
    let mut t = TextTable::new(&["density", "format", "bw_utilization"]);
    for r in rows {
        t.row(&[
            format!("{:.4}", r.density),
            r.format.to_string(),
            f3(r.bandwidth_utilization),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Fig10Row> {
        run(&ExperimentConfig::quick()).unwrap()
    }

    #[test]
    fn coo_is_pinned_at_one_third() {
        // §6.3: "the memory bandwidth utilization of COO is always 0.3."
        for r in rows().iter().filter(|r| r.format == FormatKind::Coo) {
            assert!((r.bandwidth_utilization - 1.0 / 3.0).abs() < 1e-9, "{r:?}");
        }
    }

    #[test]
    fn utilization_rises_with_density_for_non_coo_formats() {
        // §6.3: "for all formats but COO, the memory bandwidth utilization
        // of denser matrices (density > 0.1) [...] is higher than that of
        // extremely sparse matrices."
        let rows = rows();
        let util = |f: FormatKind, d: f64| {
            rows.iter()
                .find(|r| r.format == f && (r.density - d).abs() < 1e-9)
                .unwrap()
                .bandwidth_utilization
        };
        for f in [
            FormatKind::Dense,
            FormatKind::Csr,
            FormatKind::Bcsr,
            FormatKind::Csc,
            FormatKind::Lil,
            FormatKind::Ell,
        ] {
            assert!(util(f, 0.5) > util(f, 0.0001), "{f}");
        }
    }

    #[test]
    fn dense_utilization_equals_density() {
        // The dense baseline's only payload fraction is the density itself.
        for r in rows().iter().filter(|r| r.format == FormatKind::Dense) {
            // Tile-level density differs slightly from the requested global
            // density because only non-zero partitions transfer.
            assert!(r.bandwidth_utilization <= 1.0);
            assert!(r.bandwidth_utilization >= r.density * 0.5, "{r:?}");
        }
    }

    #[test]
    fn all_utilizations_are_fractions() {
        for r in rows() {
            assert!((0.0..=1.0).contains(&r.bandwidth_utilization), "{r:?}");
        }
    }
}
