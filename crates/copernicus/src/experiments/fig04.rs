//! Fig. 4 — decompression overhead σ of the seven formats on the
//! SuiteSparse workloads, partition size 16 (lower is better; the darkness
//! of the paper's bars encodes density, reported here as a column).

use crate::measure::ExperimentConfig;
use crate::table::{f3, TextTable};
use crate::CampaignError;
use copernicus_workloads::Workload;
use sparsemat::FormatKind;

/// One bar of Fig. 4.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig04Row {
    /// Suite workload ID.
    pub workload: String,
    /// Matrix density (the bar shading in the paper).
    pub density: f64,
    /// Format.
    pub format: FormatKind,
    /// Decompression overhead σ (Eq. 1).
    pub sigma: f64,
}

/// Runs Fig. 4 over the SuiteSparse stand-ins at partition size 16.
///
/// # Errors
///
/// Propagates platform failures.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<Fig04Row>, CampaignError> {
    run_with(cfg, &mut crate::Instruments::none())
}

/// Like [`run`], with campaign instruments attached (trace sink, metrics
/// registry, progress reporting).
///
/// # Errors
///
/// See [`run`].
pub fn run_with(
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Fig04Row>, CampaignError> {
    run_on(&crate::CampaignRunner::sequential(), cfg, instruments)
}

/// Like [`run_with`], executed on `runner`: the grid runs across the
/// runner's worker threads and overlapping cells are served from its
/// memoization cache, with rows identical — order and bytes — to the
/// sequential path.
///
/// # Errors
///
/// See [`run`].
pub fn run_on(
    runner: &crate::CampaignRunner,
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Fig04Row>, CampaignError> {
    let ms = runner.characterize_with(
        &Workload::paper_suite(),
        &super::FIGURE_FORMATS,
        &[super::DEFAULT_PARTITION],
        cfg,
        instruments,
    )?;
    Ok(ms
        .into_iter()
        .map(|m| Fig04Row {
            workload: m.workload.clone(),
            density: m.density,
            format: m.format,
            sigma: m.sigma(),
        })
        .collect())
}

/// The reproducibility manifest for this figure's campaign.
pub fn manifest(cfg: &ExperimentConfig) -> copernicus_telemetry::RunManifest {
    crate::manifest_for(
        cfg,
        &Workload::paper_suite(),
        &super::FIGURE_FORMATS,
        &[super::DEFAULT_PARTITION],
    )
    .with_note("figure=fig04")
}

/// Renders the rows as an aligned table.
pub fn render(rows: &[Fig04Row]) -> String {
    let mut t = TextTable::new(&["workload", "density", "format", "sigma"]);
    for r in rows {
        t.row(&[
            r.workload.clone(),
            format!("{:.5}", r.density),
            r.format.to_string(),
            f3(r.sigma),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Fig04Row> {
        run(&ExperimentConfig::quick()).unwrap()
    }

    #[test]
    fn covers_all_workloads_and_formats() {
        let rows = rows();
        assert_eq!(rows.len(), 20 * 8);
    }

    #[test]
    fn dense_sigma_is_one_everywhere() {
        for r in rows().iter().filter(|r| r.format == FormatKind::Dense) {
            assert!((r.sigma - 1.0).abs() < 1e-12, "{r:?}");
        }
    }

    #[test]
    fn csc_is_the_worst_case_overall() {
        // §6.1: "The worst-case scenario of decompression occurs with the
        // CSC format." CSC must have the worst mean σ across the suite and
        // be the worst format on a clear majority of workloads.
        let rows = rows();
        let mean = |f: FormatKind| {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.format == f)
                .map(|r| r.sigma)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let csc = mean(FormatKind::Csc);
        for f in super::super::FIGURE_FORMATS {
            assert!(csc >= mean(f), "CSC mean {csc} < {f} mean {}", mean(f));
        }
        let workloads: Vec<String> = {
            let mut w: Vec<String> = rows.iter().map(|r| r.workload.clone()).collect();
            w.dedup();
            w
        };
        let csc_worst_count = workloads
            .iter()
            .filter(|w| {
                let of = |f: FormatKind| {
                    rows.iter()
                        .find(|r| &r.workload == *w && r.format == f)
                        .unwrap()
                        .sigma
                };
                let csc = of(FormatKind::Csc);
                super::super::FIGURE_FORMATS
                    .iter()
                    .all(|&f| csc >= of(f) - 1e-9)
            })
            .count();
        assert!(
            csc_worst_count * 3 >= workloads.len() * 2,
            "CSC worst on only {csc_worst_count}/{} workloads",
            workloads.len()
        );
    }

    #[test]
    fn some_sparse_formats_beat_dense_on_sparse_workloads() {
        // Bars below 1.0 exist: "bars lower than one illustrate faster
        // computation than the baseline dense format."
        assert!(rows()
            .iter()
            .any(|r| r.format != FormatKind::Dense && r.sigma < 1.0));
    }
}
