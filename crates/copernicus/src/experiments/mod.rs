//! One driver per paper table/figure.
//!
//! Every driver takes an [`ExperimentConfig`](crate::ExperimentConfig) and
//! returns typed rows; the `copernicus-bench` binaries render them as
//! aligned text/TSV. The quick preset regenerates the whole set in seconds;
//! the paper preset matches the paper's matrix scales.

pub mod ext_backend_split;
pub mod ext_compound_scheme;
pub mod ext_partition_sweep;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod table1;
pub mod table2;

use sparsemat::FormatKind;

/// The format order the paper's figures use.
pub const FIGURE_FORMATS: [FormatKind; 8] = FormatKind::CHARACTERIZED;

/// The partition sizes the paper sweeps.
pub const FIGURE_PARTITION_SIZES: [usize; 3] = [8, 16, 32];

/// The single partition size used by the per-workload figures (4, 5, 6,
/// 10, 11).
pub const DEFAULT_PARTITION: usize = 16;
