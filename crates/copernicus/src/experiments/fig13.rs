//! Fig. 13 — dynamic power broken into (a) logic, (b) BRAM and (c) signal
//! components per format and partition size.

use crate::table::TextTable;
use copernicus_hls::power;
use sparsemat::FormatKind;

/// One stacked bar of Fig. 13.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig13Row {
    /// Format.
    pub format: FormatKind,
    /// Partition size.
    pub partition_size: usize,
    /// Power switched in LUT logic (W).
    pub logic_w: f64,
    /// Power switched in BRAM blocks (W).
    pub bram_w: f64,
    /// Power switched in routed signals (W).
    pub signals_w: f64,
}

/// Produces the Fig.-13 breakdown for the given partition sizes.
pub fn run(partition_sizes: &[usize]) -> Vec<Fig13Row> {
    let mut rows = Vec::new();
    for format in super::FIGURE_FORMATS {
        for &p in partition_sizes {
            // Every FIGURE_FORMATS entry carries a power model; a format
            // without one simply contributes no bar.
            let Some(b) = power::breakdown(format, p) else {
                continue;
            };
            rows.push(Fig13Row {
                format,
                partition_size: p,
                logic_w: b.logic_w,
                bram_w: b.bram_w,
                signals_w: b.signals_w,
            });
        }
    }
    rows
}

/// Renders the rows as an aligned table.
pub fn render(rows: &[Fig13Row]) -> String {
    let mut t = TextTable::new(&["format", "p", "logic_W", "bram_W", "signals_W", "total_W"]);
    for r in rows {
        t.row(&[
            r.format.to_string(),
            r.partition_size.to_string(),
            format!("{:.4}", r.logic_w),
            format!("{:.4}", r.bram_w),
            format!("{:.4}", r.signals_w),
            format!("{:.4}", r.logic_w + r.bram_w + r.signals_w),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Fig13Row> {
        run(&[8, 16, 32])
    }

    #[test]
    fn totals_match_table2_dynamic_power() {
        for r in rows() {
            let total = r.logic_w + r.bram_w + r.signals_w;
            let table2 = power::dynamic_power(r.format, r.partition_size).unwrap();
            assert!((total - table2).abs() < 1e-12, "{r:?}");
        }
    }

    #[test]
    fn logic_power_never_decreases_sharply_with_partition_size() {
        // §6.4: "the power consumption of logic always increases or stays
        // steady as partition size increases" — allow small model noise for
        // ELL, whose LUT count genuinely shrinks at 32 in Table 2.
        let rows = rows();
        for f in [
            FormatKind::Dense,
            FormatKind::Csr,
            FormatKind::Bcsr,
            FormatKind::Coo,
            FormatKind::Dia,
        ] {
            let at = |p: usize| {
                rows.iter()
                    .find(|r| r.format == f && r.partition_size == p)
                    .unwrap()
                    .logic_w
            };
            assert!(at(32) >= at(8) * 0.9, "{f}: {} -> {}", at(8), at(32));
        }
    }

    #[test]
    fn signals_hold_a_meaningful_share_everywhere() {
        // §6.4: overall dynamic power "more generally follows the same trend
        // as the power consumption of signals" — signals must never vanish
        // from the breakdown.
        for r in rows() {
            let total = r.logic_w + r.bram_w + r.signals_w;
            assert!(r.signals_w >= 0.3 * total, "{r:?}");
        }
    }

    #[test]
    fn covers_formats_times_sizes() {
        assert_eq!(rows().len(), 8 * 3);
    }
}
