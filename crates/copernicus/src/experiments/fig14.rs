//! Fig. 14 — the normalized six-metric summary per workload class
//! (1 = best format on a metric within the class, 0 = worst).

use crate::measure::ExperimentConfig;
use crate::summary::{normalized_summary, MetricKind, SummaryRow};
use crate::table::{f3, TextTable};
use crate::CampaignError;

/// Runs the full campaign and normalizes into Fig.-14 rows.
///
/// # Errors
///
/// Propagates platform failures.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<SummaryRow>, CampaignError> {
    run_with(cfg, &mut crate::Instruments::none())
}

/// Like [`run`], with campaign instruments attached (trace sink, metrics
/// registry, progress reporting).
///
/// # Errors
///
/// See [`run`].
pub fn run_with(
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<SummaryRow>, CampaignError> {
    run_on(&crate::CampaignRunner::sequential(), cfg, instruments)
}

/// Like [`run_with`], executed on `runner`: the grid runs across the
/// runner's worker threads and overlapping cells are served from its
/// memoization cache, with rows identical — order and bytes — to the
/// sequential path.
///
/// # Errors
///
/// See [`run`].
pub fn run_on(
    runner: &crate::CampaignRunner,
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<SummaryRow>, CampaignError> {
    let ms = runner.characterize_with(
        &super::fig07::all_class_workloads(cfg),
        &super::FIGURE_FORMATS,
        &super::FIGURE_PARTITION_SIZES,
        cfg,
        instruments,
    )?;
    Ok(normalized_summary(&ms))
}

/// The reproducibility manifest for this figure's campaign.
pub fn manifest(cfg: &ExperimentConfig) -> copernicus_telemetry::RunManifest {
    crate::manifest_for(
        cfg,
        &super::fig07::all_class_workloads(cfg),
        &super::FIGURE_FORMATS,
        &super::FIGURE_PARTITION_SIZES,
    )
    .with_note("figure=fig14")
}

/// Renders the rows as an aligned table (one line per class × format).
pub fn render(rows: &[SummaryRow]) -> String {
    let mut header: Vec<&str> = vec!["class", "format"];
    header.extend(MetricKind::ALL.iter().map(|m| m.label()));
    let mut t = TextTable::new(&header);
    for r in rows {
        let mut row = vec![r.class.to_string(), r.format.to_string()];
        row.extend(r.scores.iter().map(|&s| f3(s)));
        t.row(&row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use copernicus_workloads::WorkloadClass;
    use sparsemat::FormatKind;

    fn rows() -> Vec<SummaryRow> {
        crate::summary::normalized_summary(crate::testsupport::campaign())
    }

    #[test]
    fn covers_three_classes_times_eight_formats() {
        assert_eq!(rows().len(), 3 * 8);
    }

    #[test]
    fn coo_scores_well_on_suitesparse_latency() {
        // §8: "a non-specialized format such as COO performs faster [...]
        // compared to a specialized format such as DIA" on SuiteSparse.
        let rows = rows();
        let score = |f: FormatKind| {
            rows.iter()
                .find(|r| r.class == WorkloadClass::SuiteSparse && r.format == f)
                .unwrap()
                .score(MetricKind::Latency)
        };
        assert!(score(FormatKind::Coo) > score(FormatKind::Dia));
    }

    #[test]
    fn dia_wins_bandwidth_utilization_on_band_matrices() {
        // §8: "a pattern-specific format such as DIA near-perfectly utilizes
        // the memory bandwidth" on structured band matrices.
        let rows = rows();
        let dia = rows
            .iter()
            .find(|r| r.class == WorkloadClass::Band && r.format == FormatKind::Dia)
            .unwrap();
        // DIA must be at or near the top (its average over widths competes
        // with ELL/LIL whose utilization is capped at 0.5).
        assert!(dia.score(MetricKind::BandwidthUtilization) > 0.6, "{dia:?}");
    }

    #[test]
    fn render_lists_every_metric() {
        let s = render(&rows());
        for m in MetricKind::ALL {
            assert!(s.contains(m.label()), "missing {m}");
        }
    }
}
