//! Fig. 3 — density and spatial locality of the SuiteSparse workloads:
//! "(a) non-zero values in partitions, (b) non-zero values in non-zero
//! rows, and (c) non-zero rows in partitions" for partition sizes 8/16/32.

use crate::measure::ExperimentConfig;
use crate::table::{f3, TextTable};
use copernicus_workloads::Workload;

/// One bar group of Fig. 3: a workload's statistics at one partition size.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig03Row {
    /// Suite workload ID.
    pub workload: String,
    /// Partition size.
    pub partition_size: usize,
    /// Fig. 3a — % non-zero values in non-zero partitions.
    pub partition_density_pct: f64,
    /// Fig. 3b — % non-zero values in the non-zero rows.
    pub row_density_pct: f64,
    /// Fig. 3c — % non-zero rows in non-zero partitions.
    pub nonzero_row_share_pct: f64,
}

/// Runs the Fig.-3 measurement over the SuiteSparse stand-ins.
///
/// # Errors
///
/// Propagates partitioning failures.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<Fig03Row>, sparsemat::SparseError> {
    run_on(&crate::CampaignRunner::sequential(), cfg)
}

/// Like [`run`], served from `runner`'s workload cache: the suite matrices
/// and tilings measured here are the same objects every later campaign on
/// that runner sweeps, so `repro_all` generates each exactly once.
///
/// # Errors
///
/// Propagates partitioning failures.
pub fn run_on(
    runner: &crate::CampaignRunner,
    cfg: &ExperimentConfig,
) -> Result<Vec<Fig03Row>, sparsemat::SparseError> {
    let mut rows = Vec::new();
    for workload in Workload::paper_suite() {
        for &p in &super::FIGURE_PARTITION_SIZES {
            let entry = runner
                .workloads()
                .grid(&workload, p, cfg.suite_max_dim, cfg.seed)?;
            let stats = entry.grid.stats();
            rows.push(Fig03Row {
                workload: workload.label(),
                partition_size: p,
                partition_density_pct: stats.partition_density_pct,
                row_density_pct: stats.row_density_pct,
                nonzero_row_share_pct: stats.nonzero_row_share_pct,
            });
        }
    }
    Ok(rows)
}

/// Renders the rows as an aligned table.
pub fn render(rows: &[Fig03Row]) -> String {
    let mut t = TextTable::new(&[
        "workload",
        "p",
        "a:part_density%",
        "b:row_density%",
        "c:nz_row_share%",
    ]);
    for r in rows {
        t.row(&[
            r.workload.clone(),
            r.partition_size.to_string(),
            f3(r.partition_density_pct),
            f3(r.row_density_pct),
            f3(r.nonzero_row_share_pct),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_twenty_workloads_times_three_sizes() {
        let rows = run(&ExperimentConfig::quick()).unwrap();
        assert_eq!(rows.len(), 20 * 3);
    }

    #[test]
    fn percentages_are_valid_and_row_density_dominates() {
        // Fig. 3b ≥ Fig. 3a always: restricting to non-zero rows can only
        // concentrate density.
        for r in run(&ExperimentConfig::quick()).unwrap() {
            assert!((0.0..=100.0).contains(&r.partition_density_pct), "{r:?}");
            assert!(r.row_density_pct >= r.partition_density_pct - 1e-9, "{r:?}");
        }
    }

    #[test]
    fn run_on_matches_run_and_primes_the_cache() {
        let cfg = ExperimentConfig::quick();
        let runner = crate::CampaignRunner::sequential();
        let cached = run_on(&runner, &cfg).unwrap();
        assert_eq!(cached, run(&cfg).unwrap());
        let stats = runner.workloads().stats();
        assert_eq!(stats.grid_misses as usize, 20 * 3);
        assert_eq!(stats.matrix_misses as usize, 20);
        // A second pass is all hits.
        run_on(&runner, &cfg).unwrap();
        assert_eq!(runner.workloads().stats().grid_hits as usize, 20 * 3);
    }

    #[test]
    fn render_contains_all_workloads() {
        let rows = run(&ExperimentConfig::quick()).unwrap();
        let s = render(&rows);
        for id in ["2C", "KR", "WI"] {
            assert!(s.contains(id), "missing {id}");
        }
    }
}
