//! Automated verification of the paper's §8 insights against a measurement
//! campaign — the library form of the claim checks the integration tests
//! perform, so any user can ask "do the paper's conclusions hold on *my*
//! workloads / configuration?"

use crate::{Measurement, MetricKind};
use copernicus_workloads::WorkloadClass;
use sparsemat::FormatKind;

/// Outcome of checking one paper claim against a campaign.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InsightCheck {
    /// Short identifier of the claim.
    pub id: &'static str,
    /// The claim, quoted/paraphrased from §6/§8.
    pub claim: &'static str,
    /// Whether the campaign supports it.
    pub holds: bool,
    /// The numbers behind the verdict.
    pub evidence: String,
}

fn mean<F>(ms: &[Measurement], filter: F, metric: fn(&Measurement) -> f64) -> Option<f64>
where
    F: Fn(&Measurement) -> bool,
{
    let v: Vec<f64> = ms.iter().filter(|m| filter(m)).map(metric).collect();
    if v.is_empty() {
        None
    } else {
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }
}

/// Checks every §8 insight the campaign's coverage allows and returns one
/// [`InsightCheck`] per claim. Claims whose workload class or format is
/// absent from the campaign are skipped.
pub fn verify(ms: &[Measurement]) -> Vec<InsightCheck> {
    let mut out = Vec::new();

    // 1. Memory bandwidth is not always the bottleneck.
    {
        let sparse: Vec<&Measurement> = ms
            .iter()
            .filter(|m| m.format != FormatKind::Dense)
            .collect();
        if !sparse.is_empty() {
            let compute_bound = sparse.iter().filter(|m| m.balance_ratio() < 1.0).count();
            out.push(InsightCheck {
                id: "bandwidth-not-always-bottleneck",
                claim: "Unlike a common belief, the memory bandwidth is not always the \
                        bottleneck (§8)",
                holds: compute_bound * 2 > sparse.len(),
                evidence: format!(
                    "{compute_bound}/{} sparse configurations are compute-bound",
                    sparse.len()
                ),
            });
        }
    }

    // 2. CSR allows a lower-bandwidth memory than dense.
    if let (Some(csr), Some(dense)) = (
        mean(
            ms,
            |m| m.format == FormatKind::Csr,
            |m| m.mem_cycles() as f64,
        ),
        mean(
            ms,
            |m| m.format == FormatKind::Dense,
            |m| m.mem_cycles() as f64,
        ),
    ) {
        out.push(InsightCheck {
            id: "csr-needs-less-bandwidth",
            claim: "When using a format such as CSR, a lower-bandwidth low-cost memory is \
                    sufficient (§8)",
            holds: csr < dense,
            evidence: format!("mean memory cycles: CSR {csr:.0} vs dense {dense:.0}"),
        });
    }

    // 3. Generic COO beats specialized DIA on real-world workloads.
    let suite = |m: &Measurement| m.class == WorkloadClass::SuiteSparse;
    if let (Some(coo_t), Some(dia_t), Some(coo_u), Some(dia_u)) = (
        mean(
            ms,
            |m| suite(m) && m.format == FormatKind::Coo,
            Measurement::total_seconds,
        ),
        mean(
            ms,
            |m| suite(m) && m.format == FormatKind::Dia,
            Measurement::total_seconds,
        ),
        mean(
            ms,
            |m| suite(m) && m.format == FormatKind::Coo,
            Measurement::bandwidth_utilization,
        ),
        mean(
            ms,
            |m| suite(m) && m.format == FormatKind::Dia,
            Measurement::bandwidth_utilization,
        ),
    ) {
        out.push(InsightCheck {
            id: "generic-beats-specialized",
            claim: "A nonspecialized format such as COO performs faster and better utilizes \
                    the memory bandwidth compared to a specialized format such as DIA (§8)",
            holds: coo_t < dia_t && coo_u > dia_u,
            evidence: format!(
                "time COO {coo_t:.2e}s vs DIA {dia_t:.2e}s; utilization COO {coo_u:.3} vs \
                 DIA {dia_u:.3}"
            ),
        });
    }

    // 4. CSC is the computation worst case.
    if let Some(csc) = mean(ms, |m| m.format == FormatKind::Csc, Measurement::sigma) {
        let worst_other = FormatKind::CHARACTERIZED
            .iter()
            .filter(|&&f| f != FormatKind::Csc)
            .filter_map(|&f| mean(ms, |m| m.format == f, Measurement::sigma))
            .fold(0.0f64, f64::max);
        out.push(InsightCheck {
            id: "csc-worst-case",
            claim: "The worst-case scenario of decompression occurs with the CSC format \
                    (§6.1)",
            holds: csc >= worst_other,
            evidence: format!("mean σ: CSC {csc:.2} vs next worst {worst_other:.2}"),
        });
    }

    // 5. DIA near-perfectly utilizes bandwidth on band/diagonal matrices.
    let band = |m: &Measurement| m.class == WorkloadClass::Band;
    if let Some(dia_u) = mean(
        ms,
        |m| band(m) && m.format == FormatKind::Dia,
        Measurement::bandwidth_utilization,
    ) {
        let best_other = FormatKind::CHARACTERIZED
            .iter()
            .filter(|&&f| f != FormatKind::Dia && f != FormatKind::Dense && f != FormatKind::Bcsr)
            .filter_map(|&f| {
                mean(
                    ms,
                    |m| band(m) && m.format == f,
                    Measurement::bandwidth_utilization,
                )
            })
            .fold(0.0f64, f64::max);
        out.push(InsightCheck {
            id: "dia-wins-band-utilization",
            claim: "For structured band matrices, a pattern-specific format such as DIA \
                    near-perfectly utilizes the memory bandwidth (§8)",
            holds: dia_u > best_other,
            evidence: format!(
                "band-class utilization: DIA {dia_u:.3} vs best element-wise generic \
                 {best_other:.3}"
            ),
        });
    }

    out
}

/// Renders the checks as an aligned table.
pub fn render(checks: &[InsightCheck]) -> String {
    let mut t = crate::table::TextTable::new(&["insight", "holds", "evidence"]);
    for c in checks {
        t.row(&[
            c.id.to_string(),
            if c.holds { "yes" } else { "NO" }.to_string(),
            c.evidence.clone(),
        ]);
    }
    t.render()
}

/// Convenience: the six metric labels in figure order (re-exported next to
/// the insight machinery because reports often print both).
pub fn metric_labels() -> [&'static str; 6] {
    let mut out = [""; 6];
    for (i, m) in MetricKind::ALL.iter().enumerate() {
        out[i] = m.label();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checks() -> Vec<InsightCheck> {
        verify(crate::testsupport::campaign())
    }

    #[test]
    fn all_five_insights_are_checked_on_a_full_campaign() {
        let ids: Vec<&str> = checks().iter().map(|c| c.id).collect();
        assert_eq!(
            ids,
            vec![
                "bandwidth-not-always-bottleneck",
                "csr-needs-less-bandwidth",
                "generic-beats-specialized",
                "csc-worst-case",
                "dia-wins-band-utilization",
            ]
        );
    }

    #[test]
    fn all_insights_hold_on_the_quick_campaign() {
        for c in checks() {
            assert!(c.holds, "{}: {}", c.id, c.evidence);
        }
    }

    #[test]
    fn evidence_strings_carry_numbers() {
        for c in checks() {
            assert!(
                c.evidence.chars().any(|ch| ch.is_ascii_digit()),
                "{}: {}",
                c.id,
                c.evidence
            );
        }
    }

    #[test]
    fn partial_campaigns_skip_uncovered_claims() {
        // A campaign with only random workloads cannot check the
        // suite/band-specific claims.
        let ms: Vec<Measurement> = crate::testsupport::campaign()
            .iter()
            .filter(|m| m.class == copernicus_workloads::WorkloadClass::Random)
            .cloned()
            .collect();
        let ids: Vec<&str> = verify(&ms).iter().map(|c| c.id).collect();
        assert!(!ids.contains(&"generic-beats-specialized"));
        assert!(!ids.contains(&"dia-wins-band-utilization"));
        assert!(ids.contains(&"csc-worst-case"));
    }

    #[test]
    fn render_marks_verdicts() {
        let s = render(&checks());
        assert!(s.contains("yes"));
        assert!(s.contains("csc-worst-case"));
    }

    #[test]
    fn metric_labels_are_in_figure_order() {
        assert_eq!(metric_labels()[0], "sigma");
        assert_eq!(metric_labels()[5], "power");
    }
}
