//! Plain-text table rendering for the figure/table regeneration binaries.

/// A simple aligned text table builder.
///
/// ```
/// use copernicus::table::TextTable;
///
/// let mut t = TextTable::new(&["format", "sigma"]);
/// t.row(&["CSR".to_string(), "1.50".to_string()]);
/// let s = t.render();
/// assert!(s.contains("format"));
/// assert!(s.contains("CSR"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with space-aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(cell, &w)| format!("{cell:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as tab-separated values (easy to pipe into plotting tools).
    pub fn render_tsv(&self) -> String {
        let mut out = self.header.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 significant decimals for table cells.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float in engineering-friendly form (e.g. throughput).
pub fn eng(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}k", v / 1e3)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["a", "long_header"]);
        t.row(&["x".into(), "1".into()]);
        t.row(&["longer_cell".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("---"));
        // Columns align: "1" and "2" start at the same offset.
        let off1 = lines[2].find('1').unwrap();
        let off2 = lines[3].find('2').unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    fn tsv_has_tabs_and_all_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.render_tsv(), "a\tb\n1\t2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(eng(2_500_000_000.0), "2.50G");
        assert_eq!(eng(3_200_000.0), "3.20M");
        assert_eq!(eng(1_500.0), "1.50k");
        assert_eq!(eng(12.0), "12.00");
    }
}
