//! A format-recommendation engine encoding the paper's §8 insights.
//!
//! Given the structural statistics of a workload (partition density, band
//! structure, non-zero-row share) and an optimization goal, recommends a
//! compression format with the paper's rationale attached — the "hints to
//! architects to mindfully choose appropriate sparse formats" the paper
//! promises.

use sparsemat::{Coo, Dia, FormatKind, Matrix, PartitionGrid, SparseError};

/// What the user optimizes for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Goal {
    /// Minimize end-to-end latency.
    Latency,
    /// Maximize streaming throughput.
    Throughput,
    /// Minimize dynamic power / energy.
    Power,
    /// Keep memory-read and compute balanced (streaming pipelines).
    Balance,
    /// Maximize useful bytes per transferred byte.
    BandwidthUtilization,
}

/// A recommendation with its paper-derived rationale.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Recommendation {
    /// The recommended format.
    pub format: FormatKind,
    /// A sensible partition size to pair with it.
    pub partition_size: usize,
    /// One-paragraph rationale citing the paper's findings.
    pub rationale: String,
}

/// Structural features the rules dispatch on.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Features {
    density: f64,
    /// Fraction of nnz on the main diagonal band of width 64.
    band_fraction: f64,
    /// True when the matrix is (nearly) purely diagonal/banded.
    is_banded: bool,
    nonzero_row_share: f64,
}

fn features(matrix: &Coo<f32>) -> Result<Features, SparseError> {
    let density = matrix.density();
    let dia = Dia::from(matrix);
    let in_band: usize = dia
        .offsets()
        .iter()
        .enumerate()
        .filter(|(_, &d)| d.unsigned_abs() <= 32)
        .map(|(k, _)| dia.diagonal(k).iter().filter(|v| **v != 0.0).count())
        .sum();
    let band_fraction = if matrix.nnz() == 0 {
        0.0
    } else {
        in_band as f64 / matrix.nnz() as f64
    };
    let is_banded = band_fraction > 0.95 && dia.num_diagonals() <= 65;
    let grid = PartitionGrid::new(matrix, 16)?;
    let stats = grid.stats();
    Ok(Features {
        density,
        band_fraction,
        is_banded,
        nonzero_row_share: stats.nonzero_row_share_pct / 100.0,
    })
}

/// Recommends a format for a workload and goal, following §8:
///
/// * generic formats (COO) beat pattern-specific ones on irregular
///   matrices because they match generic hardware;
/// * DIA only pays off for genuinely banded matrices *if* bandwidth
///   utilization is the goal;
/// * BCSR/LIL suit denser matrices when throughput or power matters;
/// * for density > 0.1 (neural-network territory), small partitions and
///   simple formats win.
///
/// # Errors
///
/// Propagates partitioning failures (cannot happen for valid matrices).
pub fn recommend(matrix: &Coo<f32>, goal: Goal) -> Result<Recommendation, SparseError> {
    let f = features(matrix)?;
    let rec = match goal {
        Goal::BandwidthUtilization if f.is_banded => Recommendation {
            format: FormatKind::Dia,
            partition_size: 32,
            rationale: "the matrix is banded and the goal is bandwidth utilization: §8 finds DIA \
                        'near-perfectly utilizes the memory bandwidth and does it better as the \
                        partition size increases' — but pair it with a DIA-aware compute engine, \
                        or the format/hardware mismatch becomes a computation bottleneck"
                .into(),
        },
        Goal::BandwidthUtilization => Recommendation {
            format: FormatKind::Lil,
            partition_size: 32,
            rationale: "for irregular sparsity, §6.3 finds LIL 'a better candidate to cover more \
                        extreme sparseness as well as a wider variety of random matrices' while \
                        offering a better balance ratio at larger partitions than COO and ELL"
                .into(),
        },
        Goal::Latency if f.is_banded => Recommendation {
            format: FormatKind::Ell,
            partition_size: 16,
            rationale: "for structured matrices §6.4 finds 'LIL and ELL are the fastest in terms \
                        of latency and throughput, among which ELL performs better for band \
                        matrices with wider bandwidths and consumes less power'"
                .into(),
        },
        Goal::Latency => Recommendation {
            format: FormatKind::Coo,
            partition_size: 16,
            rationale: "§6.4: 'for SuiteSparse matrices, not only does COO consume the least \
                        dynamic power, but also it is the fastest in terms of total latency'; \
                        §8 adds that a non-specialized format such as COO performs faster than a \
                        specialized one because it matches generic hardware"
                .into(),
        },
        Goal::Throughput => Recommendation {
            format: FormatKind::Bcsr,
            partition_size: if f.density > 0.1 { 8 } else { 16 },
            rationale: "§6.3 finds BCSR, LIL and DIA reach the highest throughput; §6.4: 'if \
                        achieving high throughput at lower power is the goal, BCSR is a better \
                        fit'"
                .into(),
        },
        Goal::Power => Recommendation {
            format: FormatKind::Coo,
            partition_size: 8,
            rationale: "§6.4: COO consumes the least dynamic power on diverse workloads, and the \
                        smallest partition size keeps both BRAM and signal power down (Fig. 13)"
                .into(),
        },
        Goal::Balance => {
            if f.density > 0.1 {
                Recommendation {
                    format: FormatKind::Bcsr,
                    partition_size: 8,
                    rationale: "§6.2 suggests BCSR or LIL for less sparse applications (e.g. \
                                neural-network inference) when memory bandwidth can keep up; §8 \
                                warns that for density > 0.1, partitions beyond 8×8 or at most \
                                16×16 hurt performance"
                        .into(),
                }
            } else {
                Recommendation {
                    format: FormatKind::Coo,
                    partition_size: 16,
                    rationale: "§6.2: 'COO seems to offer a reasonable balance for various \
                                densities as well as the varieties of band matrices'"
                        .into(),
                }
            }
        }
    };
    Ok(rec)
}

/// Measurement-based recommendation: instead of the §8 rules, actually
/// runs the matrix through the platform in every characterized format and
/// picks the best one for the goal. Slower but exact for the configured
/// hardware.
///
/// # Errors
///
/// Propagates platform failures.
pub fn recommend_measured(
    matrix: &Coo<f32>,
    goal: Goal,
    cfg: &copernicus_hls::HwConfig,
) -> Result<Recommendation, crate::CampaignError> {
    let mut session = copernicus_hls::Session::new(cfg.clone())?;
    let mut best: Option<(FormatKind, f64)> = None;
    for format in FormatKind::CHARACTERIZED {
        let r = session
            .run(copernicus_hls::RunRequest::matrix(matrix, format))?
            .report;
        // Higher score = better for the goal.
        let score = match goal {
            Goal::Latency => -(r.total_cycles as f64),
            Goal::Throughput => r.throughput_bytes_per_sec(),
            Goal::Power => {
                -copernicus_hls::power::energy_joules(format, cfg.partition_size, r.total_seconds())
                    .unwrap_or(f64::INFINITY)
            }
            Goal::Balance => -r.balance_ratio.max(1e-12).ln().abs(),
            Goal::BandwidthUtilization => r.bandwidth_utilization(),
        };
        if best.is_none_or(|(_, s)| score > s) {
            best = Some((format, score));
        }
    }
    let Some((format, score)) = best else {
        return Err(copernicus_hls::PlatformError::Config(
            "no characterized formats to recommend from".to_string(),
        )
        .into());
    };
    Ok(Recommendation {
        format,
        partition_size: cfg.partition_size,
        rationale: format!(
            "measured best of the {} characterized formats for {goal:?} on this matrix              at p={} (score {score:.4e})",
            FormatKind::CHARACTERIZED.len(),
            cfg.partition_size
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use copernicus_workloads::{band, random, seeded_rng};

    fn banded() -> Coo<f32> {
        band::band(128, 4, &mut seeded_rng(0))
    }

    fn irregular() -> Coo<f32> {
        random::uniform_square(128, 0.02, &mut seeded_rng(1))
    }

    fn dense_ish() -> Coo<f32> {
        random::uniform_square(64, 0.3, &mut seeded_rng(2))
    }

    #[test]
    fn banded_plus_bandwidth_goal_gives_dia() {
        let r = recommend(&banded(), Goal::BandwidthUtilization).unwrap();
        assert_eq!(r.format, FormatKind::Dia);
        assert_eq!(r.partition_size, 32);
        assert!(r.rationale.contains("band"));
    }

    #[test]
    fn irregular_bandwidth_goal_gives_lil() {
        let r = recommend(&irregular(), Goal::BandwidthUtilization).unwrap();
        assert_eq!(r.format, FormatKind::Lil);
    }

    #[test]
    fn latency_on_irregular_gives_coo() {
        let r = recommend(&irregular(), Goal::Latency).unwrap();
        assert_eq!(r.format, FormatKind::Coo);
    }

    #[test]
    fn latency_on_banded_gives_ell() {
        let r = recommend(&banded(), Goal::Latency).unwrap();
        assert_eq!(r.format, FormatKind::Ell);
    }

    #[test]
    fn throughput_gives_bcsr_with_density_aware_partition() {
        let r_sparse = recommend(&irregular(), Goal::Throughput).unwrap();
        assert_eq!(r_sparse.format, FormatKind::Bcsr);
        assert_eq!(r_sparse.partition_size, 16);
        let r_dense = recommend(&dense_ish(), Goal::Throughput).unwrap();
        assert_eq!(r_dense.partition_size, 8);
    }

    #[test]
    fn balance_dispatches_on_density() {
        assert_eq!(
            recommend(&irregular(), Goal::Balance).unwrap().format,
            FormatKind::Coo
        );
        assert_eq!(
            recommend(&dense_ish(), Goal::Balance).unwrap().format,
            FormatKind::Bcsr
        );
    }

    #[test]
    fn power_goal_gives_coo_small_partitions() {
        let r = recommend(&irregular(), Goal::Power).unwrap();
        assert_eq!(r.format, FormatKind::Coo);
        assert_eq!(r.partition_size, 8);
    }

    #[test]
    fn measured_recommendation_picks_a_defensible_format() {
        let cfg = copernicus_hls::HwConfig::with_partition_size(16);
        // On a diagonal matrix, DIA must win bandwidth utilization by
        // measurement, matching the rule-based recommendation.
        let diag = banded();
        let rule = recommend(&diag, Goal::BandwidthUtilization).unwrap();
        let measured = recommend_measured(&diag, Goal::BandwidthUtilization, &cfg).unwrap();
        assert_eq!(measured.format, FormatKind::Dia);
        assert_eq!(rule.format, measured.format);
        assert!(measured.rationale.contains("measured"));
    }

    #[test]
    fn measured_latency_winner_beats_csc() {
        let cfg = copernicus_hls::HwConfig::with_partition_size(16);
        let m = irregular();
        let best = recommend_measured(&m, Goal::Latency, &cfg).unwrap();
        assert_ne!(best.format, FormatKind::Csc, "CSC cannot win latency");
    }

    #[test]
    fn rationales_are_non_empty_for_all_goals() {
        for goal in [
            Goal::Latency,
            Goal::Throughput,
            Goal::Power,
            Goal::Balance,
            Goal::BandwidthUtilization,
        ] {
            let r = recommend(&banded(), goal).unwrap();
            assert!(!r.rationale.is_empty(), "{goal:?}");
        }
    }
}
