//! The parallel campaign executor: runs the `workload × partition size ×
//! format` measurement grid across OS threads with results that are
//! **bit-identical and identically ordered** to the sequential path.
//!
//! # Threading model
//!
//! The grid is split into *units* of one `(workload, partition size)` pair;
//! a unit generates its matrix and tiling once and sweeps every format over
//! the shared grid, exactly like the sequential loop in
//! [`characterize`](crate::characterize). Units are independent, so a pool
//! of `jobs` scoped OS threads ([`std::thread::scope`] — no external
//! dependencies) drains them from a bounded work queue (an atomic cursor
//! over the unit list; no unit is ever buffered twice).
//!
//! # Determinism argument
//!
//! Every cell of the grid is a pure function of `(workload spec, seed,
//! partition size, format, HwConfig)`: workload generation is seeded, and
//! the platform model is cycle-exact with no wall-clock inputs. Workers
//! therefore compute the same bytes regardless of scheduling; the runner
//! collects per-unit results and emits them sorted by grid index, so the
//! measurement vector, the metrics registry and the trace stream are
//! byte-for-byte independent of `jobs` (test-enforced for `--jobs 1` vs
//! `--jobs 8`).
//!
//! Telemetry under parallelism: each worker records pipeline events into a
//! private per-unit buffer ([`RecordingSink`]); after the pool joins, the
//! buffers are replayed into the campaign's real sink in grid order (within
//! a unit, events are already in nondecreasing modeled-cycle order), and the
//! [`MetricsRegistry`](copernicus_telemetry::MetricsRegistry) is shared —
//! it is atomic and order-independent.
//!
//! Wall-clock observability (the optional
//! [`ProgressReporter`](copernicus_telemetry::ProgressReporter) heartbeat
//! and [`PhaseProfiler`](copernicus_telemetry::PhaseProfiler) phase/worker
//! timings) rides alongside: workers tick shared atomic counters and local
//! timers, none of which feed the deterministic artifacts above.
//!
//! # Memoization
//!
//! The runner carries a cache keyed on `(workload spec, seed, suite cap,
//! partition size, format, HwConfig)`. Figure campaigns overlap heavily —
//! `repro_all`'s shared campaign re-sweeps every cell Figs. 4–6/10/11
//! already computed — so one runner handed to every figure computes each
//! overlapping cell exactly once. Cache hits replay the stored
//! [`Measurement`] without re-running the platform (and therefore without
//! re-emitting trace spans); hit/miss behavior depends only on the call
//! sequence, never on `jobs`, so determinism is preserved.
//!
//! Below the cell memo sits the [`WorkloadCache`](crate::cache): cells that
//! do run share one generated matrix per `(workload, seed, cap)` and one
//! tiling per `(…, p)` — across the format sweep, across partition sizes,
//! and across campaigns. See [`cache`](crate::cache) for the bounds and the
//! jobs-invariance argument for its hit/miss counters, which are exported
//! as `cache.*` metrics after each campaign.
//!
//! # Fault tolerance
//!
//! Campaigns survive partial failure instead of discarding completed work
//! (see [`fault`](crate::fault) for the taxonomy and policy):
//!
//! * **Panic isolation** — each cell's computation runs under
//!   [`std::panic::catch_unwind`], so one wedged worker cannot take down
//!   the pool, and every lock in the runner recovers from poisoning (a
//!   panicking thread must surface *its* failure, not a cascade of
//!   `PoisonError`s).
//! * **Retry with backoff** — transient failures (panics, injected
//!   timeouts) retry up to [`CampaignPolicy::max_retries`] with bounded,
//!   jitter-free exponential backoff; trace events from failed attempts
//!   are rolled back so a retried cell emits exactly one span set.
//! * **Checkpointing** — [`CampaignRunner::attach_checkpoint`] streams
//!   each freshly computed cell to an append-only JSONL file;
//!   [`CampaignRunner::resume_from`] reloads it into the memo cache, so a
//!   killed campaign resumes from where it died. Resumed cells are cache
//!   hits: the measurement vector and metrics are byte-identical to an
//!   uninterrupted run (trace spans are not re-emitted for resumed cells,
//!   matching ordinary cache-hit semantics).
//! * **Keep-going** — with [`CampaignPolicy::keep_going`] the runner
//!   finishes the whole grid, reporting failed cells in
//!   [`CampaignOutcome::failures`] instead of aborting on the first one.

use crate::cache::{CachedGrid, WorkloadCache};
use crate::fault::{
    panic_message, CampaignError, CampaignPolicy, CellFailure, FailureKind, FaultKind,
};
use crate::{ExperimentConfig, Instruments, Measurement};
use copernicus_hls::{PlatformError, RunRequest, Session};
use copernicus_telemetry::{
    replay, CancelToken, Phase, PhaseProfiler, PipelineEvent, ProgressReporter, RecordingSink,
    TraceSink, WorkerStats,
};
use copernicus_workloads::Workload;
use sparsemat::FormatKind;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufWriter, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering the data from a poisoned lock. The runner's
/// shared state (cache, result slots, checkpoint writer) stays consistent
/// under panics — each critical section either fully inserts a value or
/// does not — so the poison flag carries no information here, and clearing
/// it is what lets the *first real failure* surface instead of a
/// `PoisonError` cascade from every thread that comes after.
pub(crate) fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Executes measurement grids across OS threads with a shared memoization
/// cache. See the [module docs](self) for the threading and determinism
/// model.
#[derive(Debug, Default)]
pub struct CampaignRunner {
    jobs: usize,
    /// Intra-run worker count handed to every cell session; `None` splits
    /// the `jobs` budget between cells and tiles per campaign (see
    /// [`CampaignRunner::tile_jobs_for`]).
    tile_jobs: Option<usize>,
    cache: Mutex<HashMap<String, Measurement>>,
    workloads: WorkloadCache,
    policy: CampaignPolicy,
    checkpoint: Option<Mutex<BufWriter<File>>>,
    resumed: usize,
    /// Global cell counter: campaigns claim `total` indices each, in issue
    /// order, so every cell has a stable index across the runner's lifetime
    /// (the coordinate the fault harness and checkpoint diagnostics use).
    dispatched: AtomicUsize,
}

impl CampaignRunner {
    /// A runner with `jobs` worker threads (`0` is clamped to 1).
    pub fn new(jobs: usize) -> Self {
        CampaignRunner {
            jobs: jobs.max(1),
            ..CampaignRunner::default()
        }
    }

    /// A single-threaded runner — the reference path every parallel run
    /// must match byte-for-byte.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// A runner sized to the machine: one worker per available hardware
    /// thread (1 when the parallelism cannot be queried).
    pub fn auto() -> Self {
        Self::new(default_jobs())
    }

    /// Builder: replaces the fault-handling policy.
    pub fn with_policy(mut self, policy: CampaignPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active fault-handling policy.
    pub fn policy(&self) -> &CampaignPolicy {
        &self.policy
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Builder: pins the intra-run tile worker count handed to every cell
    /// session (`0` is clamped to 1 = serial tiles). Without this, the
    /// runner splits its `jobs` budget between campaign cells and
    /// partitions automatically. Purely a host-side speedup either way:
    /// measurements and traces are byte-identical at any setting.
    pub fn with_tile_jobs(mut self, jobs: usize) -> Self {
        self.tile_jobs = Some(jobs.max(1));
        self
    }

    /// The pinned intra-run tile worker count, if any.
    pub fn tile_jobs(&self) -> Option<usize> {
        self.tile_jobs
    }

    /// The tile worker count a campaign over `units` grid units uses: the
    /// pinned value when set, otherwise the `jobs` budget left over after
    /// unit-level parallelism (`jobs / units`, at least 1). A wide grid
    /// keeps every thread on its own cell (tiles stay serial, no
    /// oversubscription); a narrow grid — fewer units than threads — spends
    /// the idle budget inside each run.
    fn tile_jobs_for(&self, units: usize) -> usize {
        self.tile_jobs
            .unwrap_or_else(|| (self.jobs / units.max(1)).max(1))
    }

    /// Number of memoized cells accumulated so far.
    pub fn cached_cells(&self) -> usize {
        lock_clean(&self.cache).len()
    }

    /// The runner's workload/grid cache. Figure drivers that need raw
    /// matrices or tilings (e.g. Fig. 3's structural statistics) should
    /// pull them from here so generation is shared with the measurement
    /// campaigns.
    pub fn workloads(&self) -> &WorkloadCache {
        &self.workloads
    }

    /// Streams every freshly computed cell to an append-only JSONL
    /// checkpoint at `path` (one `{"key", "measurement"}` object per line,
    /// flushed per cell so a killed process loses at most the cell in
    /// flight). Cache hits are not re-written.
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be opened for appending.
    pub fn attach_checkpoint(&mut self, path: &Path) -> std::io::Result<()> {
        let file = File::options().create(true).append(true).open(path)?;
        self.checkpoint = Some(Mutex::new(BufWriter::new(file)));
        Ok(())
    }

    /// Loads a checkpoint written by [`attach_checkpoint`]
    /// (CampaignRunner::attach_checkpoint) into the memo cache and returns
    /// the number of cells restored. A missing file restores zero cells
    /// (a first run is just an empty resume); malformed lines — e.g. the
    /// torn final line of a killed process — are skipped with a warning,
    /// so the interrupted cell is simply recomputed.
    ///
    /// # Errors
    ///
    /// Fails only on I/O errors while reading an existing file.
    pub fn resume_from(&mut self, path: &Path) -> std::io::Result<usize> {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut restored = 0usize;
        for (lineno, line) in std::io::BufReader::new(file).lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match parse_checkpoint_line(&line) {
                Some((key, m)) => {
                    lock_clean(&self.cache).insert(key, m);
                    restored += 1;
                }
                None => eprintln!(
                    "warning: skipping malformed checkpoint line {} in {}",
                    lineno + 1,
                    path.display()
                ),
            }
        }
        self.resumed += restored;
        Ok(restored)
    }

    /// Cells restored from checkpoints by [`resume_from`]
    /// (CampaignRunner::resume_from).
    pub fn resumed_cells(&self) -> usize {
        self.resumed
    }

    /// Runs the full cross product `workloads × partition_sizes × formats`
    /// across the worker pool. Output is identical — order and bytes — to
    /// [`characterize`](crate::characterize).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Cells`] when any grid cell fails after
    /// exhausting its retries (even under
    /// [`CampaignPolicy::keep_going`] — use
    /// [`run_campaign`](CampaignRunner::run_campaign) to get the partial
    /// grid alongside the failures).
    pub fn characterize(
        &self,
        workloads: &[Workload],
        formats: &[FormatKind],
        partition_sizes: &[usize],
        cfg: &ExperimentConfig,
    ) -> Result<Vec<Measurement>, CampaignError> {
        self.characterize_with(
            workloads,
            formats,
            partition_sizes,
            cfg,
            &mut Instruments::none(),
        )
    }

    /// [`CampaignRunner::characterize`] with observers attached. The trace
    /// stream, metrics totals and measurement vector are byte-identical for
    /// any `jobs`.
    ///
    /// # Errors
    ///
    /// See [`CampaignRunner::characterize`].
    pub fn characterize_with(
        &self,
        workloads: &[Workload],
        formats: &[FormatKind],
        partition_sizes: &[usize],
        cfg: &ExperimentConfig,
        instruments: &mut Instruments<'_>,
    ) -> Result<Vec<Measurement>, CampaignError> {
        self.run_campaign(workloads, formats, partition_sizes, cfg, instruments)?
            .into_result()
    }

    /// The fault-aware campaign entry point: runs the grid and reports the
    /// measurements *and* any failed cells, rather than collapsing both
    /// into one `Result`. Under [`CampaignPolicy::keep_going`] the outcome
    /// carries every failure alongside the cells that did succeed; without
    /// it the first permanent failure aborts the campaign as an `Err`.
    ///
    /// # Errors
    ///
    /// Without `keep_going`: [`CampaignError::Cells`] carrying the earliest
    /// observed cell failure.
    pub fn run_campaign(
        &self,
        workloads: &[Workload],
        formats: &[FormatKind],
        partition_sizes: &[usize],
        cfg: &ExperimentConfig,
        instruments: &mut Instruments<'_>,
    ) -> Result<CampaignOutcome, CampaignError> {
        let units: Vec<(usize, usize)> = (0..workloads.len())
            .flat_map(|wi| (0..partition_sizes.len()).map(move |pi| (wi, pi)))
            .collect();
        let total = workloads.len() * partition_sizes.len() * formats.len();
        let cell_base = self.dispatched.fetch_add(total, Ordering::Relaxed);
        let trace = instruments.sink.as_deref().is_some_and(TraceSink::enabled);
        let metrics = instruments.metrics;
        let observers = Observers {
            progress: instruments.progress,
            profiler: instruments.profiler.clone(),
        };
        if let Some(progress) = observers.progress {
            progress.add_total(total as u64);
        }
        // One memo-key ingredient is the hardware config's JSON form;
        // serialize it once per campaign instead of once per cell.
        let hw = hw_json(cfg);
        // Split the thread budget between cells and tiles (never part of
        // the memo key: cached bytes are tile-jobs-invariant).
        let tile_jobs = self.tile_jobs_for(units.len());

        // Per-worker wall-clock accounting, merged into the profiler after
        // the pool joins. Like every observer, it never feeds the
        // deterministic artifacts.
        let workers = self.jobs.max(1).min(units.len().max(1));
        let busy: Vec<Mutex<WorkerStats>> = (0..workers)
            .map(|_| Mutex::new(WorkerStats::default()))
            .collect();
        let campaign_start = observers
            .profiler
            .as_ref()
            .map(|_| std::time::Instant::now());

        let unit_outputs = try_par_map_tagged(self.jobs, &units, |worker, ui, &(wi, pi)| {
            let unit_start = observers
                .profiler
                .as_ref()
                .map(|_| std::time::Instant::now());
            let result = self.run_unit(
                &workloads[wi],
                partition_sizes[pi],
                formats,
                cfg,
                &hw,
                trace,
                tile_jobs,
                &observers,
                cell_base + ui * formats.len(),
            );
            if let Some(start) = unit_start {
                let mut stats = lock_clean(&busy[worker]);
                stats.busy_secs += start.elapsed().as_secs_f64();
                stats.cells += formats.len() as u64;
            }
            result
        })
        .map_err(|failure| CampaignError::Cells {
            failures: vec![failure],
            total_cells: total,
        })?;
        if let (Some(profiler), Some(start)) = (&observers.profiler, campaign_start) {
            let stats: Vec<WorkerStats> = busy.iter().map(|m| lock_clean(m).clone()).collect();
            profiler.record_pool(&stats, start.elapsed().as_secs_f64());
        }

        // In-order replay: the merged trace, metrics accumulation and
        // output vector all follow grid-index order, independent of which
        // worker produced each unit.
        let mut measurements = Vec::with_capacity(total);
        let mut failures = Vec::new();
        let mut retries: u64 = 0;
        for unit in unit_outputs {
            if let Some(sink) = instruments.sink.as_deref_mut() {
                replay(&unit.events, sink);
            }
            retries += unit.retries;
            for cell in unit.cells {
                match cell {
                    Ok(m) => {
                        if metrics.is_some() {
                            instruments.record_measurement(&m);
                        }
                        measurements.push(m);
                    }
                    Err(f) => failures.push(f),
                }
            }
        }
        if let Some(metrics) = metrics {
            // Failure/retry/cache counters are touched only when nonzero, so
            // a clean campaign's metrics TSV is byte-identical to one from a
            // resumed or pre-fault-tolerance run.
            metrics.incr_nonzero("cell_retries", retries);
            if !failures.is_empty() {
                metrics.incr("cell_failures", failures.len() as u64);
                for f in &failures {
                    metrics.incr(&format!("failures.{}", f.kind.label()), 1);
                }
            }
            self.workloads.export(metrics);
        }
        // Bound the resident cache between campaigns; on the coordinator
        // thread after the pool joins, so eviction is deterministic.
        self.workloads.prune();
        Ok(CampaignOutcome {
            measurements,
            failures,
            total_cells: total,
        })
    }

    /// One `(workload, partition size)` unit: look the shared tiling up
    /// once, then sweep formats in order, buffering trace events locally.
    /// Returns `Err` only on a failure the policy does not absorb (first
    /// failing cell, no `keep_going`).
    #[allow(clippy::too_many_arguments)]
    fn run_unit(
        &self,
        workload: &Workload,
        p: usize,
        formats: &[FormatKind],
        cfg: &ExperimentConfig,
        hw: &str,
        trace: bool,
        tile_jobs: usize,
        observers: &Observers<'_>,
        cell_base: usize,
    ) -> Result<UnitOutput, CellFailure> {
        let mut sink = RecordingSink::new();
        let mut cells = Vec::with_capacity(formats.len());
        let mut retries: u64 = 0;
        // Exactly one *counted* cache lookup per unit, performed whether or
        // not the cells below are memoized or resumed from a checkpoint:
        // the hit/miss counters then meter the campaign's unit list itself,
        // which keeps metrics.tsv byte-identical across `--jobs` and across
        // interrupted-then-resumed runs. A failure here is not the unit's
        // failure — `compute_cell` repeats the lookup (uncounted) with full
        // typed-failure handling per cell. Sessions stay lazy: a fully
        // memoized unit never builds one.
        let unit_grid = {
            let _lookup = observers
                .profiler
                .as_ref()
                .map(|pr| pr.scope(Phase::CacheLookup));
            self.workloads
                .grid(workload, p, cfg.suite_max_dim, cfg.seed)
                .ok()
        };
        let mut prepared: Option<Prepared> = None;
        for (fi, &format) in formats.iter().enumerate() {
            let key = cell_key(workload, p, format, cfg, hw);
            let cached = lock_clean(&self.cache).get(&key).cloned();
            let outcome = match cached {
                Some(m) => {
                    if let Some(progress) = observers.progress {
                        progress.cell_done(true);
                    }
                    Ok(m)
                }
                None => {
                    let computed = self
                        .compute_cell(
                            workload,
                            p,
                            format,
                            cfg,
                            trace,
                            tile_jobs,
                            cell_base + fi,
                            unit_grid.as_ref(),
                            &mut prepared,
                            &mut sink,
                            &mut retries,
                            observers,
                        )
                        .inspect(|m| {
                            lock_clean(&self.cache).insert(key.clone(), m.clone());
                            self.append_checkpoint(&key, m);
                        });
                    if let Some(progress) = observers.progress {
                        if computed.is_err() {
                            progress.record_failure();
                        }
                        progress.cell_done(false);
                    }
                    computed
                }
            };
            match outcome {
                Ok(m) => cells.push(Ok(m)),
                Err(f) if self.policy.keep_going => cells.push(Err(f)),
                Err(f) => return Err(f),
            }
        }
        Ok(UnitOutput {
            cells,
            events: sink.into_events(),
            retries,
        })
    }

    /// Computes one cell under panic isolation, firing any injected fault
    /// and retrying transient failures per the policy. Trace events from
    /// failed attempts are rolled back so a retried cell's span set is
    /// byte-identical to a first-try success.
    #[allow(clippy::too_many_arguments)]
    fn compute_cell(
        &self,
        workload: &Workload,
        p: usize,
        format: FormatKind,
        cfg: &ExperimentConfig,
        trace: bool,
        tile_jobs: usize,
        cell: usize,
        unit_grid: Option<&Arc<CachedGrid>>,
        prepared: &mut Option<Prepared>,
        sink: &mut RecordingSink,
        retries: &mut u64,
        observers: &Observers<'_>,
    ) -> Result<Measurement, CellFailure> {
        let mut attempt: u32 = 0;
        loop {
            // Campaign-level cancellation (shutdown/drain or a request
            // deadline) stops the cell before any more work: the attempt
            // is not started and — below — not retried.
            if self.policy.cancelled() {
                return Err(CellFailure {
                    cell,
                    workload: workload.label(),
                    partition_size: p,
                    format,
                    kind: FailureKind::Timeout,
                    message: "campaign cancelled before the attempt started".to_string(),
                    retries: attempt,
                });
            }
            // Each attempt gets a fresh deadline: a retried timeout starts
            // its clock over, chained under the campaign token so a drain
            // cancels the attempt mid-run.
            let attempt_cancel = match (&self.policy.cancel, self.policy.cell_timeout) {
                (None, None) => None,
                (Some(parent), timeout) => Some(parent.child(timeout)),
                (None, Some(timeout)) => Some(CancelToken::new().child(Some(timeout))),
            };
            let mark = sink.events.len();
            let injected = self.policy.faults.as_ref().and_then(|plan| plan.fire(cell));
            let attempt_result =
                catch_unwind(AssertUnwindSafe(|| -> Result<Measurement, AttemptError> {
                    match injected {
                        Some(FaultKind::Panic) => panic!("injected fault at cell {cell}"),
                        Some(FaultKind::TransientError) => return Err(AttemptError::Injected),
                        None => {}
                    }
                    if prepared.is_none() {
                        // The unit-level lookup already metered this key
                        // once; reuse its entry, or — after a unit-level
                        // lookup error — repeat the lookup *uncounted*, so
                        // neither retries nor error paths skew the counters.
                        let entry = match unit_grid {
                            Some(entry) => Arc::clone(entry),
                            None => self.workloads.grid_uncounted(
                                workload,
                                p,
                                cfg.suite_max_dim,
                                cfg.seed,
                            )?,
                        };
                        let mut session = cfg.session(p)?;
                        session.set_profiler(observers.profiler.clone());
                        session.set_tile_jobs(tile_jobs);
                        *prepared = Some((entry, session));
                    }
                    let Some((entry, session)) = prepared.as_mut() else {
                        // Unreachable: the branch above just filled it.
                        return Err(AttemptError::Platform(PlatformError::Config(
                            "unit preparation lost".to_string(),
                        )));
                    };
                    // (Re)arm this attempt's token — the session outlives
                    // the attempt, the deadline must not.
                    session.set_cancel(attempt_cancel.clone());
                    let request = RunRequest::grid(&entry.grid, format);
                    let report = if trace {
                        session.run(request.with_sink(&mut *sink))?.report
                    } else {
                        session.run(request)?.report
                    };
                    Ok(Measurement {
                        workload: workload.label(),
                        class: workload.class(),
                        density: entry.density,
                        format,
                        partition_size: p,
                        report,
                    })
                }));
            let (kind, message) = match attempt_result {
                Ok(Ok(m)) => {
                    *retries += u64::from(attempt);
                    return Ok(m);
                }
                Ok(Err(AttemptError::Injected)) => {
                    (FailureKind::Timeout, "injected transient fault".to_string())
                }
                Ok(Err(AttemptError::Platform(e))) => {
                    (FailureKind::of_platform_error(&e), e.to_string())
                }
                Err(payload) => (FailureKind::Panic, panic_message(&*payload)),
            };
            sink.events.truncate(mark);
            // A panic mid-run can leave the session's scratch buffers
            // half-written; rebuild the unit state so a retry starts from a
            // clean session (the grid itself comes back as a cache hit).
            *prepared = None;
            // A cancelled campaign never retries: cancellation means "stop
            // now", not "try harder" — retrying would stall the drain.
            if kind.is_transient() && attempt < self.policy.max_retries && !self.policy.cancelled()
            {
                attempt += 1;
                if let Some(progress) = observers.progress {
                    progress.record_retry();
                }
                std::thread::sleep(std::time::Duration::from_millis(
                    self.policy.backoff_ms(attempt),
                ));
                continue;
            }
            return Err(CellFailure {
                cell,
                workload: workload.label(),
                partition_size: p,
                format,
                kind,
                message,
                retries: attempt,
            });
        }
    }

    /// Appends one cell to the checkpoint, if one is attached. Checkpoint
    /// I/O failures degrade to a warning — they cost resumability, not
    /// correctness of the in-flight campaign.
    fn append_checkpoint(&self, key: &str, m: &Measurement) {
        let Some(cp) = &self.checkpoint else { return };
        let line = checkpoint_line(key, m);
        let mut writer = lock_clean(cp);
        if writeln!(writer, "{line}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            eprintln!("warning: failed to append campaign checkpoint for cell {key}");
        }
    }
}

/// What one `(workload, partition size)` unit prepares once and shares
/// across its format sweep: the cached tiling (plus matrix density) and a
/// [`Session`] whose scratch buffers the eight format runs reuse.
type Prepared = (Arc<CachedGrid>, Session);

/// What a single computation attempt can fail with (before classification).
enum AttemptError {
    /// The fault harness injected a transient failure.
    Injected,
    /// The platform (or encoding) rejected the cell.
    Platform(PlatformError),
}

impl From<PlatformError> for AttemptError {
    fn from(e: PlatformError) -> Self {
        AttemptError::Platform(e)
    }
}

impl From<sparsemat::SparseError> for AttemptError {
    fn from(e: sparsemat::SparseError) -> Self {
        AttemptError::Platform(e.into())
    }
}

/// Everything a completed campaign produced: the measurements that
/// succeeded (in grid order) and the cells that did not.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Successful cells, in grid order.
    pub measurements: Vec<Measurement>,
    /// Cells that failed after exhausting retries, in grid order.
    pub failures: Vec<CellFailure>,
    /// Cells the campaign was asked to measure.
    pub total_cells: usize,
}

impl CampaignOutcome {
    /// Collapses the outcome into the strict full-grid contract: the
    /// measurements when every cell succeeded, otherwise
    /// [`CampaignError::Cells`] carrying all failures.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Cells`] when any cell failed.
    pub fn into_result(self) -> Result<Vec<Measurement>, CampaignError> {
        if self.failures.is_empty() {
            Ok(self.measurements)
        } else {
            Err(CampaignError::Cells {
                failures: self.failures,
                total_cells: self.total_cells,
            })
        }
    }

    /// Whether every cell of the grid was measured.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Everything one grid unit produced, handed back to the coordinating
/// thread for in-order emission.
struct UnitOutput {
    cells: Vec<Result<Measurement, CellFailure>>,
    events: Vec<PipelineEvent>,
    retries: u64,
}

/// The memoization key: every input that determines a cell's bytes — the
/// workload's canonical [`cache_key`](Workload::cache_key) (its `Debug`
/// form plus seed and cap) extended with the cell axes and the hardware
/// config's JSON form (`hw`, pre-serialized once per campaign). The bytes
/// are identical to pre-cache checkpoints, so old checkpoint files resume
/// cleanly.
fn cell_key(
    workload: &Workload,
    p: usize,
    format: FormatKind,
    cfg: &ExperimentConfig,
    hw: &str,
) -> String {
    format!(
        "{}|p={p}|{format}|{hw}",
        workload.cache_key(cfg.suite_max_dim, cfg.seed)
    )
}

/// The hardware config's JSON form, shared by every cell key of a campaign.
fn hw_json(cfg: &ExperimentConfig) -> String {
    serde::json::to_string(&serde::Serialize::serialize(&cfg.hw))
}

/// Renders one checkpoint line: a compact JSON object binding the memo key
/// to the measurement bytes. Floats round-trip exactly (the JSON writer
/// uses shortest-representation formatting), which is what makes resumed
/// artifacts byte-identical.
fn checkpoint_line(key: &str, m: &Measurement) -> String {
    serde::json::to_string(&serde::Value::Map(vec![
        ("key".to_string(), serde::Value::Str(key.to_string())),
        ("measurement".to_string(), serde::Serialize::serialize(m)),
    ]))
}

/// Parses one checkpoint line back into `(memo key, measurement)`; `None`
/// on any malformed input (the caller skips and recomputes).
fn parse_checkpoint_line(line: &str) -> Option<(String, Measurement)> {
    let value: serde::Value = serde::json::from_str(line).ok()?;
    let key = value.get("key")?.as_str()?.to_string();
    let m = serde::Deserialize::deserialize(value.get("measurement")?).ok()?;
    Some((key, m))
}

/// The worker count [`CampaignRunner::auto`] and the bench `--jobs` default
/// resolve to: available hardware parallelism, 1 when unknown.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The campaign's wall-clock observers, threaded down to every worker: the
/// shared progress counters and the phase profiler handed to each session.
/// Both sit outside the deterministic artifact path.
struct Observers<'a> {
    progress: Option<&'a ProgressReporter>,
    profiler: Option<Arc<PhaseProfiler>>,
}

/// Applies `f` to every item on a pool of `jobs` scoped threads and returns
/// the results **in item order**, stopping early on the first error.
///
/// The work queue is an atomic cursor over `items`: each worker claims the
/// next index, computes, and pushes `(index, result)`; the caller sorts by
/// index after the pool joins. With `jobs <= 1` (or a single item) no
/// thread is spawned and errors short-circuit exactly like a sequential
/// loop. Under parallelism the error with the smallest item index among
/// those encountered is returned, so a failing grid reports the same cell
/// at every job count in practice.
///
/// A worker that panics in `f` does not poison the shared result slots for
/// the others (locks recover from poisoning); the panic itself propagates
/// once after the pool joins, per [`std::thread::scope`] semantics.
///
/// # Errors
///
/// The first (lowest-index observed) error produced by `f`.
pub fn try_par_map_ordered<T, R, E, F>(jobs: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    try_par_map_tagged(jobs, items, |_, i, t| f(i, t))
}

/// [`try_par_map_ordered`] whose closure also receives the pool-local
/// **worker index** (`0..workers`, always `0` on the sequential path). The
/// worker index exists for wall-clock accounting (per-worker busy time)
/// only — results and errors are keyed by item index exactly as in the
/// untagged variant, so determinism is unaffected.
fn try_par_map_tagged<T, R, E, F>(jobs: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, usize, &T) -> Result<R, E> + Sync,
{
    let workers = jobs.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(0, i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    let error: Mutex<Option<(usize, E)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let f = &f;
            let (next, abort, results, error) = (&next, &abort, &results, &error);
            scope.spawn(move || loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                match f(worker, i, &items[i]) {
                    Ok(r) => lock_clean(results).push((i, r)),
                    Err(e) => {
                        abort.store(true, Ordering::Relaxed);
                        let mut slot = lock_clean(error);
                        if slot.as_ref().is_none_or(|&(j, _)| i < j) {
                            *slot = Some((i, e));
                        }
                    }
                }
            });
        }
    });
    if let Some((_, e)) = error.into_inner().unwrap_or_else(PoisonError::into_inner) {
        return Err(e);
    }
    let mut pairs = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    pairs.sort_by_key(|&(i, _)| i);
    Ok(pairs.into_iter().map(|(_, r)| r).collect())
}

/// Infallible [`try_par_map_ordered`]: same pool, same ordering guarantee.
pub fn par_map_ordered<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match try_par_map_ordered(jobs, items, |i, t| {
        Ok::<R, std::convert::Infallible>(f(i, t))
    }) {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use copernicus_telemetry::{MetricsRegistry, Stage};

    fn grid() -> (Vec<Workload>, Vec<FormatKind>, Vec<usize>, ExperimentConfig) {
        (
            vec![
                Workload::Random {
                    n: 64,
                    density: 0.08,
                },
                Workload::Band { n: 48, width: 4 },
                Workload::Random {
                    n: 40,
                    density: 0.2,
                },
            ],
            vec![FormatKind::Dense, FormatKind::Csr, FormatKind::Coo],
            vec![8, 16],
            ExperimentConfig::quick(),
        )
    }

    fn scratch_dir(test: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("copernicus-campaign-{}-{test}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    /// The straight-line reference the runner must reproduce byte-for-byte:
    /// the nested loop `characterize` used before the parallel executor.
    fn reference(
        workloads: &[Workload],
        formats: &[FormatKind],
        sizes: &[usize],
        cfg: &ExperimentConfig,
    ) -> Vec<Measurement> {
        let mut out = Vec::new();
        for workload in workloads {
            let matrix = workload.generate(cfg.suite_max_dim, cfg.seed);
            let density = sparsemat::Matrix::density(&matrix);
            for &p in sizes {
                let mut session = cfg.session(p).unwrap();
                let grid = sparsemat::PartitionGrid::new(&matrix, p).unwrap();
                for &format in formats {
                    out.push(Measurement {
                        workload: workload.label(),
                        class: workload.class(),
                        density,
                        format,
                        partition_size: p,
                        report: session.run(RunRequest::grid(&grid, format)).unwrap().report,
                    });
                }
            }
        }
        out
    }

    #[test]
    fn runner_matches_the_sequential_reference_at_every_job_count() {
        let (w, f, p, cfg) = grid();
        let expect = reference(&w, &f, &p, &cfg);
        for jobs in [1, 2, 4, 8] {
            let got = CampaignRunner::new(jobs)
                .characterize(&w, &f, &p, &cfg)
                .unwrap();
            assert_eq!(expect, got, "jobs={jobs}");
        }
    }

    #[test]
    fn traced_parallel_run_replays_events_in_grid_order() {
        let (w, f, p, cfg) = grid();
        let mut seq_sink = RecordingSink::new();
        let mut seq_instruments = Instruments::none().with_sink(&mut seq_sink);
        let seq = CampaignRunner::sequential()
            .characterize_with(&w, &f, &p, &cfg, &mut seq_instruments)
            .unwrap();

        let mut par_sink = RecordingSink::new();
        let mut par_instruments = Instruments::none().with_sink(&mut par_sink);
        let par = CampaignRunner::new(4)
            .characterize_with(&w, &f, &p, &cfg, &mut par_instruments)
            .unwrap();

        assert_eq!(seq, par);
        assert_eq!(seq_sink.events, par_sink.events);
        assert_eq!(par_sink.count("run_start"), par.len());
        let mem: u64 = par.iter().map(|m| m.report.total_mem_cycles).sum();
        assert_eq!(par_sink.stage_cycles(Stage::MemRead), mem);
    }

    #[test]
    fn metrics_totals_are_job_count_independent() {
        let (w, f, p, cfg) = grid();
        let tsv_at = |jobs: usize| {
            let metrics = MetricsRegistry::new();
            let mut instruments = Instruments::none().with_metrics(&metrics);
            CampaignRunner::new(jobs)
                .characterize_with(&w, &f, &p, &cfg, &mut instruments)
                .unwrap();
            metrics.to_tsv()
        };
        assert_eq!(tsv_at(1), tsv_at(8));
    }

    #[test]
    fn cache_deduplicates_overlapping_campaigns() {
        let (w, f, p, cfg) = grid();
        let runner = CampaignRunner::new(2);
        let first = runner.characterize(&w, &f, &p, &cfg).unwrap();
        let cells = runner.cached_cells();
        assert_eq!(cells, first.len());
        // A second, overlapping campaign adds no new cells and returns the
        // same bytes it would have computed.
        let again = runner.characterize(&w, &f, &[p[0]], &cfg).unwrap();
        assert_eq!(runner.cached_cells(), cells);
        let fresh = CampaignRunner::sequential()
            .characterize(&w, &f, &[p[0]], &cfg)
            .unwrap();
        assert_eq!(again, fresh);
    }

    #[test]
    fn cache_key_separates_labels_that_collide() {
        // Two different Random workloads share the label "d=0.1" at
        // different dimensions; the cache must keep them apart.
        let cfg = ExperimentConfig::quick();
        let a = Workload::Random {
            n: 32,
            density: 0.1,
        };
        let b = Workload::Random {
            n: 64,
            density: 0.1,
        };
        assert_eq!(a.label(), b.label());
        let hw = hw_json(&cfg);
        assert_ne!(
            cell_key(&a, 16, FormatKind::Csr, &cfg, &hw),
            cell_key(&b, 16, FormatKind::Csr, &cfg, &hw)
        );
        let runner = CampaignRunner::new(2);
        let ms = runner
            .characterize(&[a, b], &[FormatKind::Csr], &[16], &cfg)
            .unwrap();
        assert_eq!(runner.cached_cells(), 2);
        assert_ne!(ms[0].report, ms[1].report);
    }

    #[test]
    fn cached_cells_skip_the_platform_but_still_count_for_metrics() {
        let (w, f, p, cfg) = grid();
        let runner = CampaignRunner::sequential();
        runner.characterize(&w, &f, &p, &cfg).unwrap();
        // Second pass: all hits — no trace events, but metrics still see
        // every delivered measurement.
        let metrics = MetricsRegistry::new();
        let mut sink = RecordingSink::new();
        let mut instruments = Instruments::none()
            .with_sink(&mut sink)
            .with_metrics(&metrics);
        let ms = runner
            .characterize_with(&w, &f, &p, &cfg, &mut instruments)
            .unwrap();
        assert!(sink.events.is_empty());
        assert_eq!(metrics.counter("runs"), ms.len() as u64);
    }

    #[test]
    fn par_map_ordered_preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 3, 16] {
            let out = par_map_ordered(jobs, &items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn try_par_map_ordered_reports_errors_at_every_job_count() {
        let items: Vec<usize> = (0..50).collect();
        for jobs in [1, 4] {
            let r: Result<Vec<usize>, String> = try_par_map_ordered(jobs, &items, |_, &x| {
                if x == 25 {
                    Err(format!("boom at {x}"))
                } else {
                    Ok(x)
                }
            });
            assert_eq!(r.unwrap_err(), "boom at 25", "jobs={jobs}");
        }
    }

    #[test]
    fn platform_errors_surface_as_typed_cell_failures() {
        let cfg = ExperimentConfig {
            hw: copernicus_hls::HwConfig {
                bus_bytes_per_cycle: 0,
                ..copernicus_hls::HwConfig::default()
            },
            ..ExperimentConfig::quick()
        };
        let w = [Workload::Band { n: 32, width: 2 }];
        for jobs in [1, 4] {
            let r = CampaignRunner::new(jobs).characterize(&w, &[FormatKind::Csr], &[16], &cfg);
            let err = r.expect_err("invalid hw config must fail the campaign");
            let failure = err.first_failure().expect("a cell failure");
            assert_eq!(failure.kind, FailureKind::Platform, "jobs={jobs}");
            assert_eq!(failure.retries, 0, "permanent failures never retry");
            assert!(failure.message.contains("invalid hardware config"));
        }
    }

    #[test]
    fn injected_panic_is_isolated_and_the_runner_stays_usable() {
        let (w, f, p, cfg) = grid();
        let total = w.len() * p.len() * f.len();
        let runner = CampaignRunner::new(4).with_policy(
            CampaignPolicy::default()
                .with_keep_going()
                .with_faults(FaultPlan::single(FaultKind::Panic, 4, 1)),
        );
        let outcome = runner
            .run_campaign(&w, &f, &p, &cfg, &mut Instruments::none())
            .expect("keep-going campaigns complete");
        assert_eq!(outcome.total_cells, total);
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.measurements.len(), total - 1);
        assert!(!outcome.is_complete());
        let failure = &outcome.failures[0];
        assert_eq!(failure.cell, 4);
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(failure.message.contains("injected fault"), "{failure}");
        // No poisoned-mutex cascade: the cache and a follow-up campaign
        // still work (the failed cell was never cached, so it recomputes).
        assert_eq!(runner.cached_cells(), total - 1);
        let again = runner
            .run_campaign(&w, &f, &p, &cfg, &mut Instruments::none())
            .expect("fault is spent; second pass is clean");
        assert!(again.is_complete());
        assert_eq!(again.measurements, reference(&w, &f, &p, &cfg));
    }

    #[test]
    fn transient_faults_retry_with_backoff_and_recover() {
        let (w, f, p, cfg) = grid();
        let runner = CampaignRunner::sequential().with_policy(
            CampaignPolicy {
                max_retries: 2,
                backoff_base_ms: 1,
                backoff_cap_ms: 2,
                ..CampaignPolicy::default()
            }
            .with_faults(FaultPlan::single(FaultKind::TransientError, 3, 2)),
        );
        let metrics = MetricsRegistry::new();
        let mut instruments = Instruments::none().with_metrics(&metrics);
        let ms = runner
            .characterize_with(&w, &f, &p, &cfg, &mut instruments)
            .expect("two injected failures, two retries allowed");
        assert_eq!(ms, reference(&w, &f, &p, &cfg));
        assert_eq!(metrics.counter("cell_retries"), 2);
        assert_eq!(metrics.counter("cell_failures"), 0);
    }

    #[test]
    fn exhausted_retries_classify_as_timeout() {
        let (w, f, p, cfg) = grid();
        let runner = CampaignRunner::sequential().with_policy(CampaignPolicy {
            max_retries: 1,
            backoff_base_ms: 1,
            backoff_cap_ms: 1,
            keep_going: true,
            faults: Some(FaultPlan::single(FaultKind::TransientError, 0, 5)),
            ..CampaignPolicy::default()
        });
        let outcome = runner
            .run_campaign(&w, &f, &p, &cfg, &mut Instruments::none())
            .unwrap();
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].kind, FailureKind::Timeout);
        assert_eq!(outcome.failures[0].retries, 1);
    }

    #[test]
    fn expired_cell_deadline_is_a_real_transient_timeout() {
        // A zero deadline is born expired: every attempt fails with a
        // *real* FailureKind::Timeout (no fault injection involved), and
        // the transient retry budget is spent in full before giving up.
        let (w, f, p, cfg) = grid();
        let total = w.len() * p.len() * f.len();
        let runner = CampaignRunner::sequential().with_policy(
            CampaignPolicy {
                max_retries: 2,
                backoff_base_ms: 1,
                backoff_cap_ms: 1,
                keep_going: true,
                ..CampaignPolicy::default()
            }
            .with_cell_timeout(std::time::Duration::ZERO),
        );
        let outcome = runner
            .run_campaign(&w, &f, &p, &cfg, &mut Instruments::none())
            .expect("keep-going campaigns complete");
        assert_eq!(outcome.failures.len(), total);
        assert!(outcome.measurements.is_empty());
        for failure in &outcome.failures {
            assert_eq!(failure.kind, FailureKind::Timeout);
            assert_eq!(
                failure.retries, 2,
                "transient timeouts spend the retry budget"
            );
            assert!(failure.message.contains("cancelled"), "{failure}");
        }
    }

    #[test]
    fn generous_cell_deadline_leaves_results_byte_identical() {
        let (w, f, p, cfg) = grid();
        let runner = CampaignRunner::sequential().with_policy(
            CampaignPolicy::default().with_cell_timeout(std::time::Duration::from_secs(3600)),
        );
        let ms = runner
            .characterize(&w, &f, &p, &cfg)
            .expect("generous deadline never fires");
        assert_eq!(ms, reference(&w, &f, &p, &cfg));
    }

    #[test]
    fn campaign_cancellation_stops_cells_without_retrying() {
        // A pre-cancelled campaign token models shutdown/drain: every cell
        // fails Timeout immediately with zero retries even though retries
        // are allowed — cancellation must not stall behind backoff sleeps.
        let (w, f, p, cfg) = grid();
        let total = w.len() * p.len() * f.len();
        let cancel = CancelToken::new();
        cancel.cancel();
        let runner = CampaignRunner::sequential().with_policy(
            CampaignPolicy {
                max_retries: 3,
                keep_going: true,
                ..CampaignPolicy::default()
            }
            .with_cancel(cancel),
        );
        let outcome = runner
            .run_campaign(&w, &f, &p, &cfg, &mut Instruments::none())
            .expect("keep-going campaigns complete");
        assert_eq!(outcome.failures.len(), total);
        for failure in &outcome.failures {
            assert_eq!(failure.kind, FailureKind::Timeout);
            assert_eq!(failure.retries, 0, "cancelled cells never retry");
        }
    }

    #[test]
    fn live_campaign_token_leaves_results_byte_identical() {
        let (w, f, p, cfg) = grid();
        let cancel = CancelToken::new();
        let runner =
            CampaignRunner::sequential().with_policy(CampaignPolicy::default().with_cancel(cancel));
        let ms = runner
            .characterize(&w, &f, &p, &cfg)
            .expect("live token never fires");
        assert_eq!(ms, reference(&w, &f, &p, &cfg));
    }

    #[test]
    fn fault_cells_index_the_global_dispatch_order() {
        let (w, f, p, cfg) = grid();
        let total = w.len() * p.len() * f.len();
        // Arm a fault in the *second* campaign's index range; the first
        // campaign must run clean.
        let runner = CampaignRunner::sequential().with_policy(
            CampaignPolicy::default()
                .with_keep_going()
                .with_faults(FaultPlan::single(FaultKind::Panic, total, 1)),
        );
        let first = runner
            .run_campaign(&w, &f, &p, &cfg, &mut Instruments::none())
            .unwrap();
        assert!(first.is_complete());
        // Second campaign over a different seed recomputes every cell; its
        // first cell carries global index `total` and trips the fault.
        let cfg2 = ExperimentConfig {
            seed: cfg.seed + 1,
            ..cfg
        };
        let second = runner
            .run_campaign(&w, &f, &p, &cfg2, &mut Instruments::none())
            .unwrap();
        assert_eq!(second.failures.len(), 1);
        assert_eq!(second.failures[0].cell, total);
    }

    #[test]
    fn checkpoint_round_trips_through_resume() {
        let (w, f, p, cfg) = grid();
        let dir = scratch_dir("checkpoint-round-trip");
        let path = dir.join("checkpoint.jsonl");
        let _ = std::fs::remove_file(&path);

        let mut writer = CampaignRunner::new(2);
        writer.attach_checkpoint(&path).expect("open checkpoint");
        let full = writer.characterize(&w, &f, &p, &cfg).unwrap();

        let mut reader = CampaignRunner::sequential();
        let restored = reader.resume_from(&path).expect("read checkpoint");
        assert_eq!(restored, full.len());
        assert_eq!(reader.resumed_cells(), full.len());
        assert_eq!(reader.cached_cells(), full.len());
        // Every cell is a cache hit now: identical bytes, no trace spans.
        let mut sink = RecordingSink::new();
        let mut instruments = Instruments::none().with_sink(&mut sink);
        let resumed = reader
            .characterize_with(&w, &f, &p, &cfg, &mut instruments)
            .unwrap();
        assert_eq!(resumed, full);
        assert!(sink.events.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_skips_torn_and_garbage_lines() {
        let dir = scratch_dir("resume-torn-lines");
        let path = dir.join("checkpoint.jsonl");
        let (w, f, p, cfg) = grid();
        let mut writer = CampaignRunner::sequential();
        writer.attach_checkpoint(&path).unwrap();
        writer.characterize(&w, &[f[0]], &[p[0]], &cfg).unwrap();
        // Simulate a kill mid-write: append garbage and a torn JSON line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("not json at all\n{\"key\": \"torn");
        std::fs::write(&path, text).unwrap();

        let mut reader = CampaignRunner::sequential();
        let restored = reader.resume_from(&path).unwrap();
        assert_eq!(restored, w.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_from_a_missing_checkpoint_restores_nothing() {
        let mut runner = CampaignRunner::sequential();
        let restored = runner
            .resume_from(Path::new("/nonexistent/checkpoint.jsonl"))
            .expect("missing file is an empty resume");
        assert_eq!(restored, 0);
        assert_eq!(runner.resumed_cells(), 0);
    }

    #[test]
    fn tile_parallel_campaigns_match_the_sequential_reference() {
        let (w, f, p, cfg) = grid();
        let expect = reference(&w, &f, &p, &cfg);
        // Pinned tile workers, with and without cell parallelism.
        for (jobs, tiles) in [(1, 4), (2, 3)] {
            let got = CampaignRunner::new(jobs)
                .with_tile_jobs(tiles)
                .characterize(&w, &f, &p, &cfg)
                .unwrap();
            assert_eq!(expect, got, "jobs={jobs} tile_jobs={tiles}");
        }
        // Auto split: more threads than units pushes the surplus into tiles.
        let runner = CampaignRunner::new(16);
        assert_eq!(runner.tile_jobs(), None);
        assert_eq!(runner.tile_jobs_for(6), 2);
        assert_eq!(runner.tile_jobs_for(16), 1);
        assert_eq!(runner.tile_jobs_for(0), 16);
        let got = runner.characterize(&w, &f, &p, &cfg).unwrap();
        assert_eq!(expect, got);
        // A wide grid at the default job count keeps tiles serial.
        assert_eq!(CampaignRunner::sequential().tile_jobs_for(4), 1);
        assert_eq!(
            CampaignRunner::new(0).with_tile_jobs(0).tile_jobs(),
            Some(1)
        );
    }

    #[test]
    fn tile_parallel_traced_campaign_replays_identical_events() {
        let (w, f, p, cfg) = grid();
        let mut seq_sink = RecordingSink::new();
        let mut seq_instruments = Instruments::none().with_sink(&mut seq_sink);
        let seq = CampaignRunner::sequential()
            .characterize_with(&w, &f, &p, &cfg, &mut seq_instruments)
            .unwrap();
        let mut par_sink = RecordingSink::new();
        let mut par_instruments = Instruments::none().with_sink(&mut par_sink);
        let par = CampaignRunner::new(2)
            .with_tile_jobs(4)
            .characterize_with(&w, &f, &p, &cfg, &mut par_instruments)
            .unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq_sink.events, par_sink.events);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(CampaignRunner::new(0).jobs(), 1);
        assert!(default_jobs() >= 1);
        assert!(CampaignRunner::auto().jobs() >= 1);
    }
}
