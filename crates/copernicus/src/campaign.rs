//! The parallel campaign executor: runs the `workload × partition size ×
//! format` measurement grid across OS threads with results that are
//! **bit-identical and identically ordered** to the sequential path.
//!
//! # Threading model
//!
//! The grid is split into *units* of one `(workload, partition size)` pair;
//! a unit generates its matrix and tiling once and sweeps every format over
//! the shared grid, exactly like the sequential loop in
//! [`characterize`](crate::characterize). Units are independent, so a pool
//! of `jobs` scoped OS threads ([`std::thread::scope`] — no external
//! dependencies) drains them from a bounded work queue (an atomic cursor
//! over the unit list; no unit is ever buffered twice).
//!
//! # Determinism argument
//!
//! Every cell of the grid is a pure function of `(workload spec, seed,
//! partition size, format, HwConfig)`: workload generation is seeded, and
//! the platform model is cycle-exact with no wall-clock inputs. Workers
//! therefore compute the same bytes regardless of scheduling; the runner
//! collects per-unit results and emits them sorted by grid index, so the
//! measurement vector, the metrics registry and the trace stream are
//! byte-for-byte independent of `jobs` (test-enforced for `--jobs 1` vs
//! `--jobs 8`).
//!
//! Telemetry under parallelism: each worker records pipeline events into a
//! private per-unit buffer ([`RecordingSink`]); after the pool joins, the
//! buffers are replayed into the campaign's real sink in grid order (within
//! a unit, events are already in nondecreasing modeled-cycle order), the
//! [`MetricsRegistry`](copernicus_telemetry::MetricsRegistry) is shared —
//! it is atomic and order-independent — and `--progress` lines are
//! serialized through one stderr lock.
//!
//! # Memoization
//!
//! The runner carries a cache keyed on `(workload spec, seed, suite cap,
//! partition size, format, HwConfig)`. Figure campaigns overlap heavily —
//! `repro_all`'s shared campaign re-sweeps every cell Figs. 4–6/10/11
//! already computed — so one runner handed to every figure computes each
//! overlapping cell exactly once. Cache hits replay the stored
//! [`Measurement`] without re-running the platform (and therefore without
//! re-emitting trace spans); hit/miss behavior depends only on the call
//! sequence, never on `jobs`, so determinism is preserved.

use crate::{ExperimentConfig, Instruments, Measurement};
use copernicus_hls::PlatformError;
use copernicus_telemetry::{replay, PipelineEvent, RecordingSink, TraceSink};
use copernicus_workloads::Workload;
use sparsemat::{FormatKind, PartitionGrid};
use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Executes measurement grids across OS threads with a shared memoization
/// cache. See the [module docs](self) for the threading and determinism
/// model.
#[derive(Debug, Default)]
pub struct CampaignRunner {
    jobs: usize,
    cache: Mutex<HashMap<String, Measurement>>,
}

impl CampaignRunner {
    /// A runner with `jobs` worker threads (`0` is clamped to 1).
    pub fn new(jobs: usize) -> Self {
        CampaignRunner {
            jobs: jobs.max(1),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// A single-threaded runner — the reference path every parallel run
    /// must match byte-for-byte.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// A runner sized to the machine: one worker per available hardware
    /// thread (1 when the parallelism cannot be queried).
    pub fn auto() -> Self {
        Self::new(default_jobs())
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Number of memoized cells accumulated so far.
    pub fn cached_cells(&self) -> usize {
        self.cache.lock().expect("campaign cache").len()
    }

    /// Runs the full cross product `workloads × partition_sizes × formats`
    /// across the worker pool. Output is identical — order and bytes — to
    /// [`characterize`](crate::characterize).
    ///
    /// # Errors
    ///
    /// Propagates platform construction, encoding and
    /// functional-verification failures; under parallelism the error of the
    /// earliest failing grid unit (among those observed before the pool
    /// drains) is returned.
    pub fn characterize(
        &self,
        workloads: &[Workload],
        formats: &[FormatKind],
        partition_sizes: &[usize],
        cfg: &ExperimentConfig,
    ) -> Result<Vec<Measurement>, PlatformError> {
        self.characterize_with(
            workloads,
            formats,
            partition_sizes,
            cfg,
            &mut Instruments::none(),
        )
    }

    /// [`CampaignRunner::characterize`] with observers attached. The trace
    /// stream, metrics totals and measurement vector are byte-identical for
    /// any `jobs`.
    ///
    /// # Errors
    ///
    /// See [`CampaignRunner::characterize`].
    pub fn characterize_with(
        &self,
        workloads: &[Workload],
        formats: &[FormatKind],
        partition_sizes: &[usize],
        cfg: &ExperimentConfig,
        instruments: &mut Instruments<'_>,
    ) -> Result<Vec<Measurement>, PlatformError> {
        let units: Vec<(usize, usize)> = (0..workloads.len())
            .flat_map(|wi| (0..partition_sizes.len()).map(move |pi| (wi, pi)))
            .collect();
        let total = workloads.len() * partition_sizes.len() * formats.len();
        let progress = ProgressMeter {
            enabled: instruments.progress,
            total,
            done: AtomicUsize::new(0),
        };
        let trace = instruments.sink.as_deref().is_some_and(TraceSink::enabled);
        let metrics = instruments.metrics;

        let unit_outputs = try_par_map_ordered(self.jobs, &units, |_, &(wi, pi)| {
            self.run_unit(
                &workloads[wi],
                partition_sizes[pi],
                formats,
                cfg,
                trace,
                &progress,
            )
        })?;

        // In-order replay: the merged trace, metrics accumulation and
        // output vector all follow grid-index order, independent of which
        // worker produced each unit.
        let mut out = Vec::with_capacity(total);
        for unit in unit_outputs {
            if let Some(sink) = instruments.sink.as_deref_mut() {
                replay(&unit.events, sink);
            }
            for m in unit.measurements {
                if metrics.is_some() {
                    instruments.record_measurement(&m);
                }
                out.push(m);
            }
        }
        Ok(out)
    }

    /// One `(workload, partition size)` unit: generate + tile once (and
    /// only when at least one cell misses the cache), then sweep formats in
    /// order, buffering trace events locally.
    fn run_unit(
        &self,
        workload: &Workload,
        p: usize,
        formats: &[FormatKind],
        cfg: &ExperimentConfig,
        trace: bool,
        progress: &ProgressMeter,
    ) -> Result<UnitOutput, PlatformError> {
        let mut sink = RecordingSink::new();
        let mut measurements = Vec::with_capacity(formats.len());
        let mut prepared: Option<(f64, PartitionGrid<f32>, copernicus_hls::Platform)> = None;
        for &format in formats {
            let key = cell_key(workload, p, format, cfg);
            let cached = self
                .cache
                .lock()
                .expect("campaign cache")
                .get(&key)
                .cloned();
            progress.tick(&workload.label(), p, format, cached.is_some());
            let measurement = match cached {
                Some(m) => m,
                None => {
                    if prepared.is_none() {
                        let matrix = workload.generate(cfg.suite_max_dim, cfg.seed);
                        let density = sparsemat::Matrix::density(&matrix);
                        let grid = PartitionGrid::new(&matrix, p)?;
                        prepared = Some((density, grid, cfg.platform(p)?));
                    }
                    let (density, grid, platform) = prepared.as_ref().expect("just prepared");
                    let report = if trace {
                        platform.run_grid_with_sink(grid, format, &mut sink)?
                    } else {
                        platform.run_grid(grid, format)?
                    };
                    let m = Measurement {
                        workload: workload.label(),
                        class: workload.class(),
                        density: *density,
                        format,
                        partition_size: p,
                        report,
                    };
                    self.cache
                        .lock()
                        .expect("campaign cache")
                        .insert(key, m.clone());
                    m
                }
            };
            measurements.push(measurement);
        }
        Ok(UnitOutput {
            measurements,
            events: sink.into_events(),
        })
    }
}

/// Everything one grid unit produced, handed back to the coordinating
/// thread for in-order emission.
struct UnitOutput {
    measurements: Vec<Measurement>,
    events: Vec<PipelineEvent>,
}

/// The memoization key: every input that determines a cell's bytes. The
/// workload's `Debug` form is used instead of its axis label because labels
/// elide the dimension (`d=0.5` at two different `n` must not collide).
fn cell_key(workload: &Workload, p: usize, format: FormatKind, cfg: &ExperimentConfig) -> String {
    let hw = serde::json::to_string(&serde::Serialize::serialize(&cfg.hw));
    format!(
        "{workload:?}|seed={}|cap={}|p={p}|{format}|{hw}",
        cfg.seed, cfg.suite_max_dim
    )
}

/// The worker count [`CampaignRunner::auto`] and the bench `--jobs` default
/// resolve to: available hardware parallelism, 1 when unknown.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Shared progress reporting: one atomic counter for the `[done/total]`
/// prefix, lines made atomic by writing through a single stderr lock.
struct ProgressMeter {
    enabled: bool,
    total: usize,
    done: AtomicUsize,
}

impl ProgressMeter {
    fn tick(&self, label: &str, p: usize, format: FormatKind, cached: bool) {
        if !self.enabled {
            return;
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let total = self.total;
        let suffix = if cached { " (cached)" } else { "" };
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "[{done}/{total}] {label} p={p} {format}{suffix}");
    }
}

/// Applies `f` to every item on a pool of `jobs` scoped threads and returns
/// the results **in item order**, stopping early on the first error.
///
/// The work queue is an atomic cursor over `items`: each worker claims the
/// next index, computes, and pushes `(index, result)`; the caller sorts by
/// index after the pool joins. With `jobs <= 1` (or a single item) no
/// thread is spawned and errors short-circuit exactly like a sequential
/// loop. Under parallelism the error with the smallest item index among
/// those encountered is returned, so a failing grid reports the same cell
/// at every job count in practice.
///
/// # Errors
///
/// The first (lowest-index observed) error produced by `f`.
pub fn try_par_map_ordered<T, R, E, F>(jobs: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let workers = jobs.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    let error: Mutex<Option<(usize, E)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                match f(i, &items[i]) {
                    Ok(r) => results.lock().expect("result slots").push((i, r)),
                    Err(e) => {
                        abort.store(true, Ordering::Relaxed);
                        let mut slot = error.lock().expect("error slot");
                        if slot.as_ref().is_none_or(|&(j, _)| i < j) {
                            *slot = Some((i, e));
                        }
                    }
                }
            });
        }
    });
    if let Some((_, e)) = error.into_inner().expect("error slot") {
        return Err(e);
    }
    let mut pairs = results.into_inner().expect("result slots");
    pairs.sort_by_key(|&(i, _)| i);
    Ok(pairs.into_iter().map(|(_, r)| r).collect())
}

/// Infallible [`try_par_map_ordered`]: same pool, same ordering guarantee.
pub fn par_map_ordered<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match try_par_map_ordered(jobs, items, |i, t| {
        Ok::<R, std::convert::Infallible>(f(i, t))
    }) {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copernicus_telemetry::{MetricsRegistry, Stage};

    fn grid() -> (Vec<Workload>, Vec<FormatKind>, Vec<usize>, ExperimentConfig) {
        (
            vec![
                Workload::Random {
                    n: 64,
                    density: 0.08,
                },
                Workload::Band { n: 48, width: 4 },
                Workload::Random {
                    n: 40,
                    density: 0.2,
                },
            ],
            vec![FormatKind::Dense, FormatKind::Csr, FormatKind::Coo],
            vec![8, 16],
            ExperimentConfig::quick(),
        )
    }

    /// The straight-line reference the runner must reproduce byte-for-byte:
    /// the nested loop `characterize` used before the parallel executor.
    fn reference(
        workloads: &[Workload],
        formats: &[FormatKind],
        sizes: &[usize],
        cfg: &ExperimentConfig,
    ) -> Vec<Measurement> {
        let mut out = Vec::new();
        for workload in workloads {
            let matrix = workload.generate(cfg.suite_max_dim, cfg.seed);
            let density = sparsemat::Matrix::density(&matrix);
            for &p in sizes {
                let platform = cfg.platform(p).unwrap();
                let grid = PartitionGrid::new(&matrix, p).unwrap();
                for &format in formats {
                    out.push(Measurement {
                        workload: workload.label(),
                        class: workload.class(),
                        density,
                        format,
                        partition_size: p,
                        report: platform.run_grid(&grid, format).unwrap(),
                    });
                }
            }
        }
        out
    }

    #[test]
    fn runner_matches_the_sequential_reference_at_every_job_count() {
        let (w, f, p, cfg) = grid();
        let expect = reference(&w, &f, &p, &cfg);
        for jobs in [1, 2, 4, 8] {
            let got = CampaignRunner::new(jobs)
                .characterize(&w, &f, &p, &cfg)
                .unwrap();
            assert_eq!(expect, got, "jobs={jobs}");
        }
    }

    #[test]
    fn traced_parallel_run_replays_events_in_grid_order() {
        let (w, f, p, cfg) = grid();
        let mut seq_sink = RecordingSink::new();
        let mut seq_instruments = Instruments::none().with_sink(&mut seq_sink);
        let seq = CampaignRunner::sequential()
            .characterize_with(&w, &f, &p, &cfg, &mut seq_instruments)
            .unwrap();

        let mut par_sink = RecordingSink::new();
        let mut par_instruments = Instruments::none().with_sink(&mut par_sink);
        let par = CampaignRunner::new(4)
            .characterize_with(&w, &f, &p, &cfg, &mut par_instruments)
            .unwrap();

        assert_eq!(seq, par);
        assert_eq!(seq_sink.events, par_sink.events);
        assert_eq!(par_sink.count("run_start"), par.len());
        let mem: u64 = par.iter().map(|m| m.report.total_mem_cycles).sum();
        assert_eq!(par_sink.stage_cycles(Stage::MemRead), mem);
    }

    #[test]
    fn metrics_totals_are_job_count_independent() {
        let (w, f, p, cfg) = grid();
        let tsv_at = |jobs: usize| {
            let metrics = MetricsRegistry::new();
            let mut instruments = Instruments::none().with_metrics(&metrics);
            CampaignRunner::new(jobs)
                .characterize_with(&w, &f, &p, &cfg, &mut instruments)
                .unwrap();
            metrics.to_tsv()
        };
        assert_eq!(tsv_at(1), tsv_at(8));
    }

    #[test]
    fn cache_deduplicates_overlapping_campaigns() {
        let (w, f, p, cfg) = grid();
        let runner = CampaignRunner::new(2);
        let first = runner.characterize(&w, &f, &p, &cfg).unwrap();
        let cells = runner.cached_cells();
        assert_eq!(cells, first.len());
        // A second, overlapping campaign adds no new cells and returns the
        // same bytes it would have computed.
        let again = runner.characterize(&w, &f, &[p[0]], &cfg).unwrap();
        assert_eq!(runner.cached_cells(), cells);
        let fresh = CampaignRunner::sequential()
            .characterize(&w, &f, &[p[0]], &cfg)
            .unwrap();
        assert_eq!(again, fresh);
    }

    #[test]
    fn cache_key_separates_labels_that_collide() {
        // Two different Random workloads share the label "d=0.1" at
        // different dimensions; the cache must keep them apart.
        let cfg = ExperimentConfig::quick();
        let a = Workload::Random {
            n: 32,
            density: 0.1,
        };
        let b = Workload::Random {
            n: 64,
            density: 0.1,
        };
        assert_eq!(a.label(), b.label());
        assert_ne!(
            cell_key(&a, 16, FormatKind::Csr, &cfg),
            cell_key(&b, 16, FormatKind::Csr, &cfg)
        );
        let runner = CampaignRunner::new(2);
        let ms = runner
            .characterize(&[a, b], &[FormatKind::Csr], &[16], &cfg)
            .unwrap();
        assert_eq!(runner.cached_cells(), 2);
        assert_ne!(ms[0].report, ms[1].report);
    }

    #[test]
    fn cached_cells_skip_the_platform_but_still_count_for_metrics() {
        let (w, f, p, cfg) = grid();
        let runner = CampaignRunner::sequential();
        runner.characterize(&w, &f, &p, &cfg).unwrap();
        // Second pass: all hits — no trace events, but metrics still see
        // every delivered measurement.
        let metrics = MetricsRegistry::new();
        let mut sink = RecordingSink::new();
        let mut instruments = Instruments::none()
            .with_sink(&mut sink)
            .with_metrics(&metrics);
        let ms = runner
            .characterize_with(&w, &f, &p, &cfg, &mut instruments)
            .unwrap();
        assert!(sink.events.is_empty());
        assert_eq!(metrics.counter("runs"), ms.len() as u64);
    }

    #[test]
    fn par_map_ordered_preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 3, 16] {
            let out = par_map_ordered(jobs, &items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn try_par_map_ordered_reports_errors_at_every_job_count() {
        let items: Vec<usize> = (0..50).collect();
        for jobs in [1, 4] {
            let r: Result<Vec<usize>, String> = try_par_map_ordered(jobs, &items, |_, &x| {
                if x == 25 {
                    Err(format!("boom at {x}"))
                } else {
                    Ok(x)
                }
            });
            assert_eq!(r.unwrap_err(), "boom at 25", "jobs={jobs}");
        }
    }

    #[test]
    fn platform_errors_propagate_from_workers() {
        let cfg = ExperimentConfig {
            hw: copernicus_hls::HwConfig {
                bus_bytes_per_cycle: 0,
                ..copernicus_hls::HwConfig::default()
            },
            ..ExperimentConfig::quick()
        };
        let w = [Workload::Band { n: 32, width: 2 }];
        for jobs in [1, 4] {
            let r = CampaignRunner::new(jobs).characterize(&w, &[FormatKind::Csr], &[16], &cfg);
            assert!(matches!(r, Err(PlatformError::Config(_))), "jobs={jobs}");
        }
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(CampaignRunner::new(0).jobs(), 1);
        assert!(default_jobs() >= 1);
        assert!(CampaignRunner::auto().jobs() >= 1);
    }
}
