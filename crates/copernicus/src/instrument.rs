//! Campaign instrumentation: optional observers threaded through
//! [`characterize_with`](crate::characterize_with), plus the run-manifest
//! builder.
//!
//! Everything here is opt-in. A campaign run with [`Instruments::none`] is
//! byte-for-byte identical to an uninstrumented one.

use crate::{ExperimentConfig, Measurement};
use copernicus_telemetry::{
    MetricsRegistry, PhaseProfiler, ProgressReporter, RunManifest, TraceSink,
};
use copernicus_workloads::Workload;
use sparsemat::FormatKind;
use std::sync::Arc;

/// The observers attached to one characterization campaign.
#[derive(Default)]
pub struct Instruments<'a> {
    /// Receives pipeline events from every platform run.
    pub sink: Option<&'a mut dyn TraceSink>,
    /// Accumulates campaign-level counters and histograms.
    pub metrics: Option<&'a MetricsRegistry>,
    /// Live progress: per-cell ticks, retries and failures feed its
    /// heartbeat line and `progress.jsonl` stream.
    pub progress: Option<&'a ProgressReporter>,
    /// Wall-clock phase profiler, shared with every platform session the
    /// campaign spins up. Outside the deterministic artifact path.
    pub profiler: Option<Arc<PhaseProfiler>>,
}

impl std::fmt::Debug for Instruments<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instruments")
            .field("sink", &self.sink.is_some())
            .field("metrics", &self.metrics.is_some())
            .field("progress", &self.progress.is_some())
            .field("profiler", &self.profiler.is_some())
            .finish()
    }
}

impl<'a> Instruments<'a> {
    /// No instrumentation at all (what plain `characterize` uses).
    pub fn none() -> Self {
        Self::default()
    }

    /// Attaches a trace sink.
    pub fn with_sink(mut self, sink: &'a mut dyn TraceSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attaches a metrics registry.
    pub fn with_metrics(mut self, metrics: &'a MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches a live progress reporter.
    pub fn with_progress(mut self, progress: &'a ProgressReporter) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Attaches a wall-clock phase profiler.
    pub fn with_profiler(mut self, profiler: Arc<PhaseProfiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Folds one finished measurement into the metrics registry.
    pub(crate) fn record_measurement(&self, m: &Measurement) {
        let Some(metrics) = self.metrics else { return };
        let r = &m.report;
        metrics.incr("runs", 1);
        metrics.incr("partitions", r.partitions as u64);
        metrics.incr("mem_cycles", r.total_mem_cycles);
        metrics.incr("compute_cycles", r.total_compute_cycles);
        metrics.incr("decomp_cycles", r.total_decomp_cycles);
        metrics.incr("writeback_cycles", r.total_writeback_cycles);
        metrics.incr("dot_issues", r.total_dot_issues);
        metrics.incr("bytes", r.total_bytes);
        metrics.incr("useful_bytes", r.useful_bytes);
        metrics.incr("bram_reads", r.total_bram_reads);
        // Second-stage codec counters: both deltas are zero without a
        // configured codec, and `incr_nonzero` skips zero deltas without
        // creating the counter — so codec-off exports stay byte-identical
        // to pre-codec ones.
        metrics.incr_nonzero("codec.entropy_cycles", r.total_entropy_cycles);
        metrics.incr_nonzero(
            "codec.saved_bytes",
            r.total_bytes.saturating_sub(r.total_coded_bytes),
        );
        metrics.observe("stage_cycles.mem", r.total_mem_cycles as f64);
        metrics.observe("stage_cycles.compute", r.total_compute_cycles as f64);
        metrics.observe("stage_cycles.decomp", r.total_decomp_cycles as f64);
        metrics.observe("stage_cycles.writeback", r.total_writeback_cycles as f64);
        metrics.observe("bytes_per_run", r.total_bytes as f64);
        metrics.observe("sigma", r.sigma());
        metrics.observe("balance_ratio", r.balance_ratio);
    }
}

/// Builds the reproducibility manifest for a campaign: full hardware
/// configuration, seed, and the swept workload/format/partition labels.
pub fn manifest_for(
    cfg: &ExperimentConfig,
    workloads: &[Workload],
    formats: &[FormatKind],
    partition_sizes: &[usize],
) -> RunManifest {
    let mut manifest = RunManifest::new(cfg.seed, serde::Serialize::serialize(&cfg.hw));
    manifest.workloads = workloads.iter().map(Workload::label).collect();
    manifest.formats = formats.iter().map(|f| f.to_string()).collect();
    manifest.partition_sizes = partition_sizes.to_vec();
    manifest.notes.push(format!(
        "suite_max_dim={} sweep_dim={}",
        cfg.suite_max_dim, cfg.sweep_dim
    ));
    manifest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize_with;
    use copernicus_telemetry::{RecordingSink, Stage};

    fn small_campaign() -> (Vec<Workload>, Vec<FormatKind>, Vec<usize>, ExperimentConfig) {
        (
            vec![Workload::Random {
                n: 64,
                density: 0.08,
            }],
            vec![FormatKind::Csr, FormatKind::Coo],
            vec![16],
            ExperimentConfig::quick(),
        )
    }

    #[test]
    fn instrumented_campaign_matches_plain_campaign() {
        let (w, f, p, cfg) = small_campaign();
        let plain = crate::characterize(&w, &f, &p, &cfg).unwrap();
        let mut sink = RecordingSink::new();
        let metrics = MetricsRegistry::new();
        let mut instruments = Instruments::none()
            .with_sink(&mut sink)
            .with_metrics(&metrics);
        let traced = characterize_with(&w, &f, &p, &cfg, &mut instruments).unwrap();
        assert_eq!(plain, traced);
    }

    #[test]
    fn sink_sees_every_run_and_spans_sum_to_totals() {
        let (w, f, p, cfg) = small_campaign();
        let mut sink = RecordingSink::new();
        let mut instruments = Instruments::none().with_sink(&mut sink);
        let ms = characterize_with(&w, &f, &p, &cfg, &mut instruments).unwrap();
        assert_eq!(sink.count("run_start"), ms.len());
        assert_eq!(sink.count("run_complete"), ms.len());
        let mem_total: u64 = ms.iter().map(|m| m.report.total_mem_cycles).sum();
        assert_eq!(sink.stage_cycles(Stage::MemRead), mem_total);
    }

    #[test]
    fn metrics_registry_accumulates_campaign_totals() {
        let (w, f, p, cfg) = small_campaign();
        let metrics = MetricsRegistry::new();
        let mut instruments = Instruments::none().with_metrics(&metrics);
        let ms = characterize_with(&w, &f, &p, &cfg, &mut instruments).unwrap();
        assert_eq!(metrics.counter("runs"), ms.len() as u64);
        let compute: u64 = ms.iter().map(|m| m.report.total_compute_cycles).sum();
        assert_eq!(metrics.counter("compute_cycles"), compute);
        let sigma = metrics.histogram("sigma").expect("sigma histogram");
        assert_eq!(sigma.count(), ms.len() as u64);
        assert!(metrics.to_tsv().contains("sigma\thistogram"));
    }

    #[test]
    fn manifest_captures_the_campaign_shape() {
        let (w, f, p, cfg) = small_campaign();
        let manifest = manifest_for(&cfg, &w, &f, &p);
        assert_eq!(manifest.seed, cfg.seed);
        assert_eq!(manifest.workloads, vec![w[0].label()]);
        assert_eq!(manifest.formats, vec!["CSR".to_string(), "COO".to_string()]);
        assert_eq!(manifest.partition_sizes, vec![16]);
        // The hardware block carries the full config.
        let hw: copernicus_hls::HwConfig = serde::Deserialize::deserialize(&manifest.hw).unwrap();
        assert_eq!(hw, cfg.hw);
        // And the whole manifest survives a JSON round trip.
        let back = RunManifest::from_json(&manifest.to_json()).unwrap();
        assert_eq!(back, manifest);
    }
}
