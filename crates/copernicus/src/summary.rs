//! The normalized six-metric summary of Fig. 14.
//!
//! "Figure 14 summarizes all the six metrics for three group of workloads
//! by normalizing each metric to its maximum achieved number so that '1'
//! represents the best case and '0' represents the worst case."

use crate::Measurement;
use copernicus_workloads::WorkloadClass;
use sparsemat::FormatKind;

/// The six metrics Fig. 14 plots per format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum MetricKind {
    /// Decompression overhead σ (lower is better).
    Sigma,
    /// Total latency (lower is better).
    Latency,
    /// Balance ratio (closest to 1 is better).
    Balance,
    /// Throughput (higher is better).
    Throughput,
    /// Memory-bandwidth utilization (higher is better).
    BandwidthUtilization,
    /// Dynamic power (lower is better).
    Power,
}

impl MetricKind {
    /// All six, in the order the figure lists them.
    pub const ALL: [MetricKind; 6] = [
        MetricKind::Sigma,
        MetricKind::Latency,
        MetricKind::Balance,
        MetricKind::Throughput,
        MetricKind::BandwidthUtilization,
        MetricKind::Power,
    ];

    /// Short label for table headers.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Sigma => "sigma",
            MetricKind::Latency => "latency",
            MetricKind::Balance => "balance",
            MetricKind::Throughput => "throughput",
            MetricKind::BandwidthUtilization => "bw_util",
            MetricKind::Power => "power",
        }
    }
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One Fig.-14 row: a format's six normalized scores within one workload
/// class (1 = best format on that metric, 0 = worst).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SummaryRow {
    /// Workload class the scores are computed within.
    pub class: WorkloadClass,
    /// Format.
    pub format: FormatKind,
    /// Normalized scores in [`MetricKind::ALL`] order.
    pub scores: [f64; 6],
}

impl SummaryRow {
    /// The score for one metric.
    pub fn score(&self, metric: MetricKind) -> f64 {
        MetricKind::ALL
            .iter()
            .position(|&m| m == metric)
            .map_or(f64::NAN, |idx| self.scores[idx])
    }

    /// Mean of the six scores — a crude overall "goodness" used by the
    /// recommendation examples.
    pub fn mean_score(&self) -> f64 {
        self.scores.iter().sum::<f64>() / 6.0
    }
}

/// Raw (pre-normalization) value of a metric, averaged over a format's
/// measurements; larger-is-better metrics are returned as-is, the rest are
/// converted inside [`normalized_summary`].
fn raw_metric(ms: &[&Measurement], metric: MetricKind) -> f64 {
    let n = ms.len().max(1) as f64;
    match metric {
        MetricKind::Sigma => ms.iter().map(|m| m.sigma()).sum::<f64>() / n,
        MetricKind::Latency => ms.iter().map(|m| m.total_seconds()).sum::<f64>() / n,
        // Distance of the balance ratio from the perfect 1.0, in log space
        // so 2× memory-bound and 2× compute-bound are equally imbalanced.
        MetricKind::Balance => {
            ms.iter()
                .map(|m| m.balance_ratio().max(1e-12).ln().abs())
                .sum::<f64>()
                / n
        }
        MetricKind::Throughput => ms.iter().map(|m| m.throughput()).sum::<f64>() / n,
        MetricKind::BandwidthUtilization => {
            ms.iter().map(|m| m.bandwidth_utilization()).sum::<f64>() / n
        }
        MetricKind::Power => {
            ms.iter()
                .filter_map(|m| copernicus_hls::power::dynamic_power(m.format, m.partition_size))
                .sum::<f64>()
                .max(1e-12)
                / n
        }
    }
}

/// Whether larger raw values are better for a metric.
fn higher_is_better(metric: MetricKind) -> bool {
    matches!(
        metric,
        MetricKind::Throughput | MetricKind::BandwidthUtilization
    )
}

/// Builds the Fig.-14 summary from a measurement campaign: for each
/// workload class, each format's per-metric average is min–max normalized
/// across formats so 1 is the best format and 0 the worst.
pub fn normalized_summary(measurements: &[Measurement]) -> Vec<SummaryRow> {
    let mut classes: Vec<WorkloadClass> = measurements.iter().map(|m| m.class).collect();
    classes.sort_by_key(|c| format!("{c}"));
    classes.dedup();
    let mut formats: Vec<FormatKind> = measurements.iter().map(|m| m.format).collect();
    formats.sort();
    formats.dedup();

    let mut rows = Vec::new();
    for &class in &classes {
        // raw[metric][format]
        let mut raw = vec![vec![0.0f64; formats.len()]; MetricKind::ALL.len()];
        for (fi, &format) in formats.iter().enumerate() {
            let ms: Vec<&Measurement> = measurements
                .iter()
                .filter(|m| m.class == class && m.format == format)
                .collect();
            for (mi, &metric) in MetricKind::ALL.iter().enumerate() {
                raw[mi][fi] = raw_metric(&ms, metric);
            }
        }
        for (fi, &format) in formats.iter().enumerate() {
            let mut scores = [0.0f64; 6];
            for (mi, &metric) in MetricKind::ALL.iter().enumerate() {
                let lo = raw[mi].iter().copied().fold(f64::INFINITY, f64::min);
                let hi = raw[mi].iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let x = raw[mi][fi];
                scores[mi] = if (hi - lo).abs() < 1e-15 {
                    1.0
                } else if higher_is_better(metric) {
                    (x - lo) / (hi - lo)
                } else {
                    (hi - x) / (hi - lo)
                };
            }
            rows.push(SummaryRow {
                class,
                format,
                scores,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{characterize, ExperimentConfig};
    use copernicus_workloads::Workload;

    fn sample_rows() -> Vec<SummaryRow> {
        let cfg = ExperimentConfig::quick();
        let workloads = [
            Workload::Random {
                n: 96,
                density: 0.05,
            },
            Workload::Band { n: 96, width: 4 },
        ];
        let ms = characterize(&workloads, &FormatKind::CHARACTERIZED, &[16], &cfg).unwrap();
        normalized_summary(&ms)
    }

    #[test]
    fn scores_are_in_unit_interval() {
        for row in sample_rows() {
            for (m, s) in MetricKind::ALL.iter().zip(row.scores) {
                assert!(
                    (0.0..=1.0).contains(&s),
                    "{} {} {m} = {s}",
                    row.class,
                    row.format
                );
            }
        }
    }

    #[test]
    fn every_metric_has_a_best_and_worst_format() {
        let rows = sample_rows();
        let classes: Vec<WorkloadClass> = {
            let mut c: Vec<_> = rows.iter().map(|r| r.class).collect();
            c.dedup();
            c
        };
        for class in classes {
            for metric in MetricKind::ALL {
                let scores: Vec<f64> = rows
                    .iter()
                    .filter(|r| r.class == class)
                    .map(|r| r.score(metric))
                    .collect();
                let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let min = scores.iter().copied().fold(f64::INFINITY, f64::min);
                assert!((max - 1.0).abs() < 1e-12, "{class} {metric} max={max}");
                assert!(min.abs() < 1e-12, "{class} {metric} min={min}");
            }
        }
    }

    #[test]
    fn csc_scores_worst_on_sigma() {
        // §6.1: the worst decompression overhead belongs to CSC.
        for row in sample_rows() {
            if row.format == FormatKind::Csc {
                assert!(row.score(MetricKind::Sigma) < 1e-12, "{:?}", row);
            }
        }
    }

    #[test]
    fn row_accessors() {
        let rows = sample_rows();
        let r = &rows[0];
        assert_eq!(r.score(MetricKind::Sigma), r.scores[0]);
        assert!((0.0..=1.0).contains(&r.mean_score()));
    }

    #[test]
    fn metric_labels_are_unique() {
        let mut labels: Vec<&str> = MetricKind::ALL.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }
}
