//! The campaign-scoped workload cache: each `(workload, seed, cap)` matrix
//! is generated once and each `(workload, seed, cap, p)` tiling is built
//! once, then shared — across the 8-format sweep of a unit, across the
//! partition-size axis, and across every overlapping campaign a
//! [`CampaignRunner`](crate::CampaignRunner) executes (`repro_all`'s
//! figures re-visit the same suite matrices up to ten times).
//!
//! # Determinism
//!
//! Workload generation is a pure function of the key, so a cached matrix is
//! byte-identical to a regenerated one; hit/miss **counters** are a pure
//! function of the campaign's unit list — independent of the worker count,
//! of checkpoint resume, and of fault/retry schedules:
//!
//! * the campaign runner performs exactly **one counted grid lookup per
//!   unit**, at unit start, whether or not the unit's cells are already
//!   memoized or resumed from a checkpoint; refills after a failed attempt
//!   use the uncounted variants, so retries repeat work without repeating
//!   counts;
//! * grid keys are unique within one campaign (one unit per `(workload,
//!   p)`), so the set of grid lookups — and each lookup's hit/miss status,
//!   which only prior campaigns determine — never depends on scheduling;
//! * matrix lookups happen exactly once per grid *miss*; when two units of
//!   the same workload race to generate it, generation runs outside the
//!   lock and only the thread whose insert wins counts a miss — the loser
//!   counts the hit it would have scored under the sequential schedule.
//!
//! # Bounds
//!
//! Entries larger than [`MAX_ENTRY_BYTES`] are never admitted (they are
//! rebuilt per lookup, exactly the pre-cache behavior, and each rebuild
//! counts as a miss). The resident total is pruned back to
//! [`BUDGET_BYTES`] at the end of every campaign — on the coordinator
//! thread, in descending key order (grids before matrices), so eviction is
//! deterministic and never perturbs an in-flight unit.

use crate::campaign::lock_clean;
use copernicus_telemetry::MetricsRegistry;
use copernicus_workloads::Workload;
use sparsemat::{Coo, Matrix, PartitionGrid, SparseError, Triplet};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-entry admission cap: anything larger is rebuilt per lookup instead
/// of cached (paper-scale dense-ish sweeps would otherwise evict the whole
/// suite).
pub const MAX_ENTRY_BYTES: u64 = 32 << 20;

/// Total resident budget the end-of-campaign prune enforces.
pub const BUDGET_BYTES: u64 = 256 << 20;

/// A cached tiling plus the matrix statistic every
/// [`Measurement`](crate::Measurement) needs, so grid hits skip the matrix
/// layer entirely.
#[derive(Debug)]
pub struct CachedGrid {
    /// Density of the generating matrix.
    pub density: f64,
    /// The shared tiling.
    pub grid: PartitionGrid<f32>,
}

/// Snapshot of the cache's counters and occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Matrix lookups served from the cache.
    pub matrix_hits: u64,
    /// Matrix lookups that generated (first access, lost race, oversized).
    pub matrix_misses: u64,
    /// Grid lookups served from the cache.
    pub grid_hits: u64,
    /// Grid lookups that partitioned.
    pub grid_misses: u64,
    /// Entries evicted by the end-of-campaign prune.
    pub evictions: u64,
    /// Resident matrices.
    pub matrices: usize,
    /// Resident grids.
    pub grids: usize,
    /// Estimated resident bytes across both layers.
    pub resident_bytes: u64,
}

/// Counter values at the last [`WorkloadCache::export`], so repeated
/// campaigns on one runner emit per-campaign deltas.
#[derive(Debug, Default, Clone, Copy)]
struct Exported {
    matrix_hits: u64,
    matrix_misses: u64,
    grid_hits: u64,
    grid_misses: u64,
    evictions: u64,
}

/// Thread-safe, bounded matrix + tiling cache. See the [module
/// docs](self) for the key scheme and the determinism argument.
#[derive(Debug, Default)]
pub struct WorkloadCache {
    matrices: Mutex<BTreeMap<String, Arc<Coo<f32>>>>,
    grids: Mutex<BTreeMap<String, Arc<CachedGrid>>>,
    matrix_hits: AtomicU64,
    matrix_misses: AtomicU64,
    grid_hits: AtomicU64,
    grid_misses: AtomicU64,
    evictions: AtomicU64,
    exported: Mutex<Exported>,
}

impl WorkloadCache {
    /// An empty cache.
    pub fn new() -> Self {
        WorkloadCache::default()
    }

    /// The generated matrix for `workload` under `(max_dim, seed)`, shared
    /// when cached. Generation happens outside the lock; on a lost insert
    /// race the winner's copy is returned (identical bytes — generation is
    /// pure) and the lookup counts as the hit it would have been under the
    /// sequential schedule.
    pub fn matrix(&self, workload: &Workload, max_dim: usize, seed: u64) -> Arc<Coo<f32>> {
        self.matrix_impl(workload, max_dim, seed, true)
    }

    fn matrix_impl(
        &self,
        workload: &Workload,
        max_dim: usize,
        seed: u64,
        counted: bool,
    ) -> Arc<Coo<f32>> {
        let count = |c: &AtomicU64| {
            if counted {
                c.fetch_add(1, Ordering::Relaxed);
            }
        };
        let key = workload.cache_key(max_dim, seed);
        if let Some(m) = lock_clean(&self.matrices).get(&key) {
            count(&self.matrix_hits);
            return Arc::clone(m);
        }
        let generated = Arc::new(workload.generate(max_dim, seed));
        if coo_bytes(&generated) > MAX_ENTRY_BYTES {
            count(&self.matrix_misses);
            return generated;
        }
        match lock_clean(&self.matrices).entry(key) {
            Entry::Occupied(e) => {
                count(&self.matrix_hits);
                Arc::clone(e.get())
            }
            Entry::Vacant(v) => {
                count(&self.matrix_misses);
                v.insert(Arc::clone(&generated));
                generated
            }
        }
    }

    /// The tiling of `workload` at partition size `p` (with its matrix
    /// density), shared when cached. A miss pulls the matrix through
    /// [`matrix`](WorkloadCache::matrix) — so one unit's generation feeds
    /// every other partition size of the same workload.
    ///
    /// # Errors
    ///
    /// Propagates partitioning failures (invalid `p`).
    pub fn grid(
        &self,
        workload: &Workload,
        p: usize,
        max_dim: usize,
        seed: u64,
    ) -> Result<Arc<CachedGrid>, SparseError> {
        self.grid_impl(workload, p, max_dim, seed, true)
    }

    /// [`grid`](WorkloadCache::grid) without touching the hit/miss counters
    /// of either layer. The campaign runner meters exactly one counted grid
    /// lookup per unit; refills after a failed attempt go through here so
    /// retries never skew the counters (which must stay a pure function of
    /// the campaign's unit list — see the module docs).
    ///
    /// # Errors
    ///
    /// Propagates partitioning failures (invalid `p`).
    pub(crate) fn grid_uncounted(
        &self,
        workload: &Workload,
        p: usize,
        max_dim: usize,
        seed: u64,
    ) -> Result<Arc<CachedGrid>, SparseError> {
        self.grid_impl(workload, p, max_dim, seed, false)
    }

    fn grid_impl(
        &self,
        workload: &Workload,
        p: usize,
        max_dim: usize,
        seed: u64,
        counted: bool,
    ) -> Result<Arc<CachedGrid>, SparseError> {
        let count = |c: &AtomicU64| {
            if counted {
                c.fetch_add(1, Ordering::Relaxed);
            }
        };
        let key = format!("{}|p={p}", workload.cache_key(max_dim, seed));
        if let Some(g) = lock_clean(&self.grids).get(&key) {
            count(&self.grid_hits);
            return Ok(Arc::clone(g));
        }
        let matrix = self.matrix_impl(workload, max_dim, seed, counted);
        let built = Arc::new(CachedGrid {
            density: matrix.density(),
            grid: PartitionGrid::new(&*matrix, p)?,
        });
        if grid_bytes(&built.grid) > MAX_ENTRY_BYTES {
            count(&self.grid_misses);
            return Ok(built);
        }
        match lock_clean(&self.grids).entry(key) {
            Entry::Occupied(e) => {
                count(&self.grid_hits);
                Ok(Arc::clone(e.get()))
            }
            Entry::Vacant(v) => {
                count(&self.grid_misses);
                v.insert(Arc::clone(&built));
                Ok(built)
            }
        }
    }

    /// Counter and occupancy snapshot.
    pub fn stats(&self) -> CacheStats {
        let (matrices, grids, resident_bytes) = self.occupancy();
        CacheStats {
            matrix_hits: self.matrix_hits.load(Ordering::Relaxed),
            matrix_misses: self.matrix_misses.load(Ordering::Relaxed),
            grid_hits: self.grid_hits.load(Ordering::Relaxed),
            grid_misses: self.grid_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            matrices,
            grids,
            resident_bytes,
        }
    }

    /// Evicts entries — grids first, each layer in descending key order —
    /// until the resident estimate fits [`BUDGET_BYTES`]. Called by the
    /// runner on the coordinator thread after each campaign, so eviction
    /// order (and therefore every later hit/miss) is deterministic.
    pub fn prune(&self) {
        let (_, _, mut resident) = self.occupancy();
        if resident <= BUDGET_BYTES {
            return;
        }
        let mut evicted = 0u64;
        {
            let mut grids = lock_clean(&self.grids);
            while resident > BUDGET_BYTES {
                let Some((key, g)) = grids.last_key_value().map(|(k, g)| (k.clone(), g.clone()))
                else {
                    break;
                };
                resident = resident.saturating_sub(grid_bytes(&g.grid));
                grids.remove(&key);
                evicted += 1;
            }
        }
        {
            let mut matrices = lock_clean(&self.matrices);
            while resident > BUDGET_BYTES {
                let Some((key, m)) = matrices
                    .last_key_value()
                    .map(|(k, m)| (k.clone(), m.clone()))
                else {
                    break;
                };
                resident = resident.saturating_sub(coo_bytes(&m));
                matrices.remove(&key);
                evicted += 1;
            }
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Emits the counter deltas since the previous export as `cache.*`
    /// counters. Zero deltas are skipped, so a campaign that never touched
    /// the cache leaves the registry byte-identical.
    pub fn export(&self, metrics: &MetricsRegistry) {
        let mut last = lock_clean(&self.exported);
        let now = Exported {
            matrix_hits: self.matrix_hits.load(Ordering::Relaxed),
            matrix_misses: self.matrix_misses.load(Ordering::Relaxed),
            grid_hits: self.grid_hits.load(Ordering::Relaxed),
            grid_misses: self.grid_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        };
        metrics.incr_nonzero("cache.matrix_hits", now.matrix_hits - last.matrix_hits);
        metrics.incr_nonzero(
            "cache.matrix_misses",
            now.matrix_misses - last.matrix_misses,
        );
        metrics.incr_nonzero("cache.grid_hits", now.grid_hits - last.grid_hits);
        metrics.incr_nonzero("cache.grid_misses", now.grid_misses - last.grid_misses);
        metrics.incr_nonzero("cache.evictions", now.evictions - last.evictions);
        *last = now;
    }

    fn occupancy(&self) -> (usize, usize, u64) {
        let matrices = lock_clean(&self.matrices);
        let grids = lock_clean(&self.grids);
        let bytes = matrices.values().map(|m| coo_bytes(m)).sum::<u64>()
            + grids.values().map(|g| grid_bytes(&g.grid)).sum::<u64>();
        (matrices.len(), grids.len(), bytes)
    }
}

/// Resident-size estimate of a COO matrix: header + triplet storage.
fn coo_bytes(m: &Coo<f32>) -> u64 {
    (std::mem::size_of::<Coo<f32>>() + m.nnz() * std::mem::size_of::<Triplet<f32>>()) as u64
}

/// Resident-size estimate of a tiling: header + per-partition headers +
/// every tile's triplet storage.
fn grid_bytes(grid: &PartitionGrid<f32>) -> u64 {
    (std::mem::size_of::<PartitionGrid<f32>>()
        + std::mem::size_of_val(grid.partitions())
        + grid.nnz() * std::mem::size_of::<Triplet<f32>>()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(n: usize, density: f64) -> Workload {
        Workload::Random { n, density }
    }

    #[test]
    fn matrix_hits_after_first_generation_and_bytes_match() {
        let cache = WorkloadCache::new();
        let a = cache.matrix(&w(64, 0.1), 0, 7);
        let b = cache.matrix(&w(64, 0.1), 0, 7);
        assert_eq!(*a, *b);
        assert_eq!(*a, w(64, 0.1).generate(0, 7));
        let s = cache.stats();
        assert_eq!((s.matrix_misses, s.matrix_hits), (1, 1));
        assert_eq!(s.matrices, 1);
        assert!(s.resident_bytes > 0);
    }

    #[test]
    fn keys_separate_seed_cap_and_spec() {
        let cache = WorkloadCache::new();
        cache.matrix(&w(64, 0.1), 0, 7);
        cache.matrix(&w(64, 0.1), 0, 8); // seed differs
        cache.matrix(&w(32, 0.1), 0, 7); // spec differs
        let suite = Workload::paper_suite()[0];
        cache.matrix(&suite, 128, 7);
        cache.matrix(&suite, 256, 7); // cap differs
        let s = cache.stats();
        assert_eq!(s.matrix_misses, 5);
        assert_eq!(s.matrix_hits, 0);
    }

    #[test]
    fn grid_hits_skip_the_matrix_layer() {
        let cache = WorkloadCache::new();
        let g1 = cache.grid(&w(64, 0.1), 16, 0, 7).unwrap();
        let g2 = cache.grid(&w(64, 0.1), 16, 0, 7).unwrap();
        assert_eq!(g1.grid.partitions().len(), g2.grid.partitions().len());
        assert_eq!(g1.density, g2.density);
        let s = cache.stats();
        assert_eq!((s.grid_misses, s.grid_hits), (1, 1));
        // The hit never consulted the matrix layer.
        assert_eq!((s.matrix_misses, s.matrix_hits), (1, 0));
        // A second partition size shares the generated matrix.
        cache.grid(&w(64, 0.1), 8, 0, 7).unwrap();
        let s = cache.stats();
        assert_eq!((s.matrix_misses, s.matrix_hits), (1, 1));
        assert_eq!(s.grids, 2);
    }

    #[test]
    fn cached_grid_is_byte_identical_to_a_fresh_build() {
        let cache = WorkloadCache::new();
        let cached = cache.grid(&w(48, 0.2), 16, 0, 3).unwrap();
        let matrix = w(48, 0.2).generate(0, 3);
        let fresh = PartitionGrid::new(&matrix, 16).unwrap();
        assert_eq!(cached.grid.partitions(), fresh.partitions());
        assert_eq!(cached.density, matrix.density());
    }

    #[test]
    fn concurrent_lookups_count_like_the_sequential_schedule() {
        // 4 threads race the same (workload, p): one miss wins, three hits
        // — the exact totals a sequential 4-lookup schedule produces.
        let cache = std::sync::Arc::new(WorkloadCache::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || cache.grid(&w(96, 0.05), 16, 0, 9).unwrap());
            }
        });
        let s = cache.stats();
        assert_eq!(s.grid_misses + s.grid_hits, 4);
        assert_eq!(s.grid_misses, 1);
        assert_eq!(s.matrix_misses, 1);
        assert_eq!(s.grids, 1);
    }

    #[test]
    fn uncounted_lookups_share_entries_but_never_touch_the_counters() {
        let cache = WorkloadCache::new();
        // A cold uncounted lookup generates and inserts silently …
        let a = cache.grid_uncounted(&w(64, 0.1), 16, 0, 7).unwrap();
        let s = cache.stats();
        assert_eq!((s.grid_misses, s.grid_hits), (0, 0));
        assert_eq!((s.matrix_misses, s.matrix_hits), (0, 0));
        assert_eq!((s.grids, s.matrices), (1, 1));
        // … a warm one reads the shared entry silently …
        let b = cache.grid_uncounted(&w(64, 0.1), 16, 0, 7).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().grid_hits, 0);
        // … and a later counted lookup meters as if it ran the schedule
        // alone (here: a hit on the silently-inserted entry).
        cache.grid(&w(64, 0.1), 16, 0, 7).unwrap();
        let s = cache.stats();
        assert_eq!((s.grid_misses, s.grid_hits), (0, 1));
    }

    #[test]
    fn prune_evicts_in_descending_key_order_until_budget() {
        let cache = WorkloadCache::new();
        for seed in 0..6 {
            cache.grid(&w(64, 0.2), 16, 0, seed).unwrap();
        }
        // Budget is far above these tiny entries: prune is a no-op.
        cache.prune();
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().grids, 6);
    }

    #[test]
    fn export_emits_nonzero_deltas_once() {
        let cache = WorkloadCache::new();
        cache.grid(&w(64, 0.1), 16, 0, 7).unwrap();
        cache.grid(&w(64, 0.1), 16, 0, 7).unwrap();
        let metrics = MetricsRegistry::new();
        cache.export(&metrics);
        assert_eq!(metrics.counter("cache.grid_misses"), 1);
        assert_eq!(metrics.counter("cache.grid_hits"), 1);
        assert_eq!(metrics.counter("cache.matrix_misses"), 1);
        // No activity since: a second export adds nothing and creates no
        // zero-valued counters.
        cache.export(&metrics);
        assert_eq!(metrics.counter("cache.grid_misses"), 1);
        assert!(!metrics
            .counter_names()
            .contains(&"cache.evictions".to_string()));
    }
}
