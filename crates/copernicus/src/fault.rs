//! Fault tolerance for measurement campaigns: the failure taxonomy, the
//! retry/backoff policy, and the deterministic fault-injection harness.
//!
//! # Failure taxonomy
//!
//! Every failed grid cell is classified into one of four [`FailureKind`]s:
//!
//! * **Input** — the workload data itself is bad (partitioning/encoding
//!   rejected the matrix, e.g. a malformed `.mtx` upstream). Permanent:
//!   re-running the same bytes re-fails.
//! * **Platform** — the hardware model rejected the configuration or a
//!   decompressor disagreed with the reference tile. Permanent for the same
//!   reason.
//! * **Panic** — a worker panicked while computing the cell. Treated as
//!   transient (a wedged allocation, a poisoned dependency) and retried.
//! * **Timeout** — the cell exceeded its deadline, the canonical transient
//!   failure of real measurement fleets. Produced by real per-cell
//!   deadlines ([`CampaignPolicy::cell_timeout`], the `--cell-timeout`
//!   flag, or a serve-daemon request deadline cancelling the cell
//!   cooperatively) and by the fault-injection harness (`err:`/`timeout:`
//!   faults).
//!
//! Transient kinds are retried up to
//! [`CampaignPolicy::max_retries`] with bounded, deterministic exponential
//! backoff; permanent kinds fail the cell immediately.
//!
//! # Fault injection
//!
//! A [`FaultPlan`] makes chosen cells panic or fail so the recovery paths
//! are testable in CI. Faults are keyed on the runner's *global cell
//! index* — cells are numbered in dispatch order across every campaign a
//! [`CampaignRunner`](crate::CampaignRunner) executes — and fire only when
//! the cell is actually computed (cache hits are never faulted), so a plan
//! is deterministic for a given campaign sequence regardless of `--jobs`.
//!
//! Spec syntax (the `--inject-faults` flag): comma-separated clauses of
//! `kind:cell=N[:count=K]` where `kind` is `panic`, `err` or `timeout`
//! (alias of `err`) and `count` (default 1) is how many attempts at that
//! cell fail before it succeeds — `count=2` with `--max-retries 2` models a
//! flaky cell that recovers on the third try.
//!
//! ```text
//! --inject-faults panic:cell=12,err:cell=40:count=2
//! ```

use copernicus_hls::PlatformError;
use sparsemat::FormatKind;
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// Classification of a cell failure. See the [module docs](self) for the
/// taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FailureKind {
    /// Bad workload data (partitioning/encoding rejected it). Permanent.
    Input,
    /// The platform model rejected the configuration or failed functional
    /// verification. Permanent.
    Platform,
    /// The worker panicked while computing the cell. Transient.
    Panic,
    /// The cell exceeded its deadline — a real `--cell-timeout` expiry, a
    /// cooperative cancellation, or an injected fault. Transient.
    Timeout,
}

impl FailureKind {
    /// Whether retrying the cell can plausibly succeed.
    pub fn is_transient(self) -> bool {
        matches!(self, FailureKind::Panic | FailureKind::Timeout)
    }

    /// Lower-case taxonomy tag used in metrics names and manifests.
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Input => "input",
            FailureKind::Platform => "platform",
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
        }
    }

    /// Classifies a platform error.
    pub fn of_platform_error(e: &PlatformError) -> Self {
        match e {
            PlatformError::Sparse(_) => FailureKind::Input,
            PlatformError::Cancelled => FailureKind::Timeout,
            _ => FailureKind::Platform,
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One grid cell that ultimately failed (after exhausting any retries).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CellFailure {
    /// Global cell index (dispatch order across the runner's campaigns).
    pub cell: usize,
    /// Workload label of the cell.
    pub workload: String,
    /// Partition size of the cell.
    pub partition_size: usize,
    /// Format under test.
    pub format: FormatKind,
    /// Failure classification.
    pub kind: FailureKind,
    /// Human-readable description of the last attempt's failure.
    pub message: String,
    /// Retries spent before giving up.
    pub retries: u32,
}

impl CellFailure {
    /// The manifest-facing audit record of this failure.
    pub fn to_record(&self) -> copernicus_telemetry::FailureRecord {
        copernicus_telemetry::FailureRecord {
            cell: self.cell as u64,
            workload: self.workload.clone(),
            partition_size: self.partition_size,
            format: self.format.to_string(),
            kind: self.kind.label().to_string(),
            message: self.message.clone(),
            retries: u64::from(self.retries),
        }
    }
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell {} ({} p={} {}): {} failure: {}",
            self.cell, self.workload, self.partition_size, self.format, self.kind, self.message
        )?;
        if self.retries > 0 {
            write!(f, " (after {} retries)", self.retries)?;
        }
        Ok(())
    }
}

/// A campaign that could not deliver its full measurement grid.
#[derive(Debug)]
#[non_exhaustive]
pub enum CampaignError {
    /// One or more cells failed permanently. Without
    /// [`CampaignPolicy::keep_going`] this carries the earliest observed
    /// failure; with it, every failed cell of the completed grid.
    Cells {
        /// The failed cells, in grid order.
        failures: Vec<CellFailure>,
        /// Cells the campaign was asked to measure.
        total_cells: usize,
    },
    /// A platform error outside the cell machinery (e.g. a directly driven
    /// experiment that does not run on a [`CampaignRunner`](crate::CampaignRunner)).
    Platform(PlatformError),
}

impl CampaignError {
    /// The earliest failed cell, when the error carries cell failures.
    pub fn first_failure(&self) -> Option<&CellFailure> {
        match self {
            CampaignError::Cells { failures, .. } => failures.first(),
            _ => None,
        }
    }

    /// Every failed cell carried by this error (empty for non-cell errors).
    pub fn failures(&self) -> &[CellFailure] {
        match self {
            CampaignError::Cells { failures, .. } => failures,
            _ => &[],
        }
    }
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Cells {
                failures,
                total_cells,
            } => {
                write!(f, "{} of {} grid cells failed", failures.len(), total_cells)?;
                if let Some(first) = failures.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            CampaignError::Platform(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlatformError> for CampaignError {
    fn from(e: PlatformError) -> Self {
        CampaignError::Platform(e)
    }
}

impl From<sparsemat::SparseError> for CampaignError {
    fn from(e: sparsemat::SparseError) -> Self {
        CampaignError::Platform(PlatformError::from(e))
    }
}

/// How a [`CampaignRunner`](crate::CampaignRunner) reacts to failing cells.
#[derive(Debug, Clone)]
pub struct CampaignPolicy {
    /// Retries granted to each cell's *transient* failures (permanent
    /// failures never retry). `0` disables retrying.
    pub max_retries: u32,
    /// Record failed cells and keep measuring the rest of the grid instead
    /// of aborting on the first permanent failure.
    pub keep_going: bool,
    /// First retry's backoff in milliseconds; attempt `k` waits
    /// `min(base << (k - 1), cap)`.
    pub backoff_base_ms: u64,
    /// Upper bound on a single backoff wait, in milliseconds.
    pub backoff_cap_ms: u64,
    /// Deterministic fault injection (testing only).
    pub faults: Option<FaultPlan>,
    /// Wall-clock deadline applied to each cell attempt. The runner
    /// derives a child [`CancelToken`](copernicus_telemetry::CancelToken)
    /// with this timeout per attempt; an expired deadline fails the cell
    /// with [`FailureKind::Timeout`] (transient — retried like any other
    /// timeout). `None` disables per-cell deadlines.
    pub cell_timeout: Option<std::time::Duration>,
    /// Campaign-level cancellation (shutdown/drain or a per-request
    /// deadline in the serve daemon). Once cancelled, in-flight cells fail
    /// with [`FailureKind::Timeout`] and are *not* retried — cancellation
    /// means "stop now", not "try harder".
    pub cancel: Option<copernicus_telemetry::CancelToken>,
}

impl Default for CampaignPolicy {
    fn default() -> Self {
        CampaignPolicy {
            max_retries: 0,
            keep_going: false,
            backoff_base_ms: 10,
            backoff_cap_ms: 250,
            faults: None,
            cell_timeout: None,
            cancel: None,
        }
    }
}

impl CampaignPolicy {
    /// The deterministic backoff before retry attempt `k` (1-based):
    /// exponential from [`backoff_base_ms`](Self::backoff_base_ms), capped
    /// at [`backoff_cap_ms`](Self::backoff_cap_ms). No jitter — resumed and
    /// repeated campaigns must behave identically.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(16);
        self.backoff_base_ms
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap_ms)
    }

    /// Builder: sets [`max_retries`](Self::max_retries).
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Builder: enables [`keep_going`](Self::keep_going).
    pub fn with_keep_going(mut self) -> Self {
        self.keep_going = true;
        self
    }

    /// Builder: arms a fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Builder: sets a per-cell wall-clock deadline.
    pub fn with_cell_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.cell_timeout = Some(timeout);
        self
    }

    /// Builder: attaches a campaign-level cancellation token.
    pub fn with_cancel(mut self, cancel: copernicus_telemetry::CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// True when campaign-level cancellation has been requested.
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(copernicus_telemetry::CancelToken::is_cancelled)
    }
}

/// What an armed fault does to the cell it fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker panics (exercises `catch_unwind` isolation).
    Panic,
    /// The attempt fails with an injected transient error, classified as
    /// [`FailureKind::Timeout`].
    TransientError,
}

/// A seeded-by-construction, deterministic set of injected faults keyed on
/// global cell indices. See the [module docs](self) for the spec syntax
/// and determinism argument.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// cell index → (what to do, attempts left to sabotage).
    armed: Mutex<HashMap<usize, (FaultKind, usize)>>,
}

impl FaultPlan {
    /// Parses a `--inject-faults` spec
    /// (`kind:cell=N[:count=K][,kind:cell=N...]`).
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown kinds, malformed clauses, or
    /// duplicate cells.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut armed = HashMap::new();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let mut parts = clause.split(':');
            let kind = match parts.next() {
                Some("panic") => FaultKind::Panic,
                Some("err" | "timeout") => FaultKind::TransientError,
                other => {
                    return Err(format!(
                        "bad fault clause {clause:?}: unknown kind {:?} \
                         (expected panic, err or timeout)",
                        other.unwrap_or("")
                    ));
                }
            };
            let mut cell: Option<usize> = None;
            let mut count: usize = 1;
            for kv in parts {
                match kv.split_once('=') {
                    Some(("cell", v)) => {
                        cell = Some(v.parse().map_err(|e| {
                            format!("bad fault clause {clause:?}: cell {v:?}: {e}")
                        })?);
                    }
                    Some(("count", v)) => {
                        count = v.parse().map_err(|e| {
                            format!("bad fault clause {clause:?}: count {v:?}: {e}")
                        })?;
                        if count == 0 {
                            return Err(format!(
                                "bad fault clause {clause:?}: count must be at least 1"
                            ));
                        }
                    }
                    _ => {
                        return Err(format!(
                            "bad fault clause {clause:?}: unknown parameter {kv:?} \
                             (expected cell=N or count=K)"
                        ));
                    }
                }
            }
            let cell =
                cell.ok_or_else(|| format!("bad fault clause {clause:?}: missing cell=N"))?;
            if armed.insert(cell, (kind, count)).is_some() {
                return Err(format!("duplicate fault for cell {cell}"));
            }
        }
        Ok(FaultPlan {
            armed: Mutex::new(armed),
        })
    }

    /// A plan with a single armed fault (test convenience).
    pub fn single(kind: FaultKind, cell: usize, count: usize) -> FaultPlan {
        let mut armed = HashMap::new();
        armed.insert(cell, (kind, count.max(1)));
        FaultPlan {
            armed: Mutex::new(armed),
        }
    }

    /// Fires the fault armed on `cell`, if any sabotage attempts remain.
    /// Each call consumes one attempt.
    pub fn fire(&self, cell: usize) -> Option<FaultKind> {
        let mut armed = self
            .armed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (kind, remaining) = armed.get_mut(&cell)?;
        let kind = *kind;
        *remaining -= 1;
        if *remaining == 0 {
            armed.remove(&cell);
        }
        Some(kind)
    }

    /// Whether any faults remain armed.
    pub fn is_empty(&self) -> bool {
        self.armed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_empty()
    }
}

impl Clone for FaultPlan {
    fn clone(&self) -> Self {
        FaultPlan {
            armed: Mutex::new(
                self.armed
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone(),
            ),
        }
    }
}

/// Renders the panic payload caught by `catch_unwind` as a message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker panic: {s}")
    } else {
        "worker panic (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_example_spec() {
        let plan = FaultPlan::parse("panic:cell=12,err:cell=40:count=2").unwrap();
        assert_eq!(plan.fire(12), Some(FaultKind::Panic));
        assert_eq!(plan.fire(12), None, "count defaults to 1");
        assert_eq!(plan.fire(40), Some(FaultKind::TransientError));
        assert_eq!(plan.fire(40), Some(FaultKind::TransientError));
        assert_eq!(plan.fire(40), None, "count=2 exhausted");
        assert!(plan.is_empty());
    }

    #[test]
    fn timeout_is_an_alias_for_err() {
        let plan = FaultPlan::parse("timeout:cell=3").unwrap();
        assert_eq!(plan.fire(3), Some(FaultKind::TransientError));
    }

    #[test]
    fn unarmed_cells_never_fire() {
        let plan = FaultPlan::parse("panic:cell=5").unwrap();
        assert_eq!(plan.fire(4), None);
        assert_eq!(plan.fire(6), None);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FaultPlan::parse("explode:cell=1").is_err());
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("panic:cell=x").is_err());
        assert!(FaultPlan::parse("panic:cell=1:count=0").is_err());
        assert!(FaultPlan::parse("panic:cell=1:lives=3").is_err());
        assert!(FaultPlan::parse("panic:cell=1,err:cell=1").is_err());
    }

    #[test]
    fn empty_spec_is_an_empty_plan() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let policy = CampaignPolicy {
            backoff_base_ms: 10,
            backoff_cap_ms: 100,
            ..CampaignPolicy::default()
        };
        assert_eq!(policy.backoff_ms(1), 10);
        assert_eq!(policy.backoff_ms(2), 20);
        assert_eq!(policy.backoff_ms(3), 40);
        assert_eq!(policy.backoff_ms(4), 80);
        assert_eq!(policy.backoff_ms(5), 100, "capped");
        assert_eq!(policy.backoff_ms(64), 100, "shift saturates");
    }

    #[test]
    fn taxonomy_splits_transient_from_permanent() {
        assert!(FailureKind::Panic.is_transient());
        assert!(FailureKind::Timeout.is_transient());
        assert!(!FailureKind::Input.is_transient());
        assert!(!FailureKind::Platform.is_transient());
    }

    #[test]
    fn platform_errors_classify_by_variant() {
        let sparse = PlatformError::Sparse(sparsemat::SparseError::ShapeMismatch {
            expected: (1, 1),
            found: (2, 2),
        });
        assert_eq!(FailureKind::of_platform_error(&sparse), FailureKind::Input);
        let config = PlatformError::Config("bad".into());
        assert_eq!(
            FailureKind::of_platform_error(&config),
            FailureKind::Platform
        );
    }

    #[test]
    fn cell_failure_display_mentions_retries() {
        let f = CellFailure {
            cell: 7,
            workload: "d=0.05".into(),
            partition_size: 16,
            format: FormatKind::Csr,
            kind: FailureKind::Panic,
            message: "worker panic: boom".into(),
            retries: 2,
        };
        let text = f.to_string();
        assert!(text.contains("cell 7"), "{text}");
        assert!(text.contains("after 2 retries"), "{text}");
        let e = CampaignError::Cells {
            failures: vec![f],
            total_cells: 10,
        };
        assert!(e.to_string().contains("1 of 10"), "{e}");
        assert_eq!(e.failures().len(), 1);
        assert!(e.first_failure().is_some());
    }

    #[test]
    fn panic_messages_render_str_and_string_payloads() {
        assert_eq!(panic_message(&"boom"), "worker panic: boom");
        assert_eq!(panic_message(&"boom".to_string()), "worker panic: boom");
        assert_eq!(panic_message(&42usize), "worker panic (non-string payload)");
    }
}
