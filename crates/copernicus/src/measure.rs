//! The characterization runner: `workload × format × partition size` →
//! [`Measurement`].

use copernicus_hls::{HwConfig, PlatformError, RunReport, Session};
use copernicus_workloads::{Workload, WorkloadClass};
use sparsemat::FormatKind;

/// Configuration of an experiment campaign.
///
/// Two presets exist: [`ExperimentConfig::quick`] keeps matrices small so
/// the full figure set regenerates in seconds (used by tests and CI), and
/// [`ExperimentConfig::paper`] matches the paper's scales where practical
/// (8000×8000 sweeps; SuiteSparse stand-ins capped at 4096 rows — see
/// `DESIGN.md` for the substitution note).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Base hardware configuration (partition size is overridden per run).
    pub hw: HwConfig,
    /// Dimension cap for the SuiteSparse stand-ins.
    pub suite_max_dim: usize,
    /// Dimension of the random/band sweep matrices (the paper uses 8000).
    pub sweep_dim: usize,
    /// Generation seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Small matrices, functional verification on — regenerates every
    /// figure in seconds.
    pub fn quick() -> Self {
        ExperimentConfig {
            hw: HwConfig::default(),
            suite_max_dim: 384,
            sweep_dim: 192,
            seed: 42,
        }
    }

    /// Paper-scale matrices (8000×8000 sweeps), functional verification off
    /// — the decompressors are already verified by the test suite.
    pub fn paper() -> Self {
        let hw = HwConfig {
            verify_functional: false,
            ..HwConfig::default()
        };
        ExperimentConfig {
            hw,
            suite_max_dim: 4096,
            sweep_dim: 8000,
            seed: 42,
        }
    }

    /// A copy with the sweep dimension replaced (e.g. from a CLI flag).
    pub fn with_sweep_dim(mut self, dim: usize) -> Self {
        self.sweep_dim = dim;
        self
    }

    /// A measurement [`Session`] at a given partition size.
    pub(crate) fn session(&self, p: usize) -> Result<Session, PlatformError> {
        let mut hw = self.hw.clone();
        hw.partition_size = p;
        Session::new(hw)
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::quick()
    }
}

/// One characterization data point: a workload streamed through the
/// platform in one format at one partition size.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Measurement {
    /// Workload label (suite ID, `d=<density>`, or `w=<width>`).
    pub workload: String,
    /// Workload class.
    pub class: WorkloadClass,
    /// Density of the generated matrix.
    pub density: f64,
    /// Format under test.
    pub format: FormatKind,
    /// Partition size.
    pub partition_size: usize,
    /// The raw platform report.
    pub report: RunReport,
}

impl Measurement {
    /// The decompression-overhead metric σ (Eq. 1).
    pub fn sigma(&self) -> f64 {
        self.report.sigma()
    }

    /// Total memory-read cycles.
    pub fn mem_cycles(&self) -> u64 {
        self.report.total_mem_cycles
    }

    /// Total compute cycles.
    pub fn compute_cycles(&self) -> u64 {
        self.report.total_compute_cycles
    }

    /// Mean per-partition memory/compute balance ratio (§4.2).
    pub fn balance_ratio(&self) -> f64 {
        self.report.balance_ratio
    }

    /// End-to-end seconds at the modeled clock.
    pub fn total_seconds(&self) -> f64 {
        self.report.total_seconds()
    }

    /// Throughput in bytes per second.
    pub fn throughput(&self) -> f64 {
        self.report.throughput_bytes_per_sec()
    }

    /// Memory-bandwidth utilization (useful / transferred bytes).
    pub fn bandwidth_utilization(&self) -> f64 {
        self.report.bandwidth_utilization()
    }

    /// Total energy in joules (dynamic + static power over the run time);
    /// `None` for formats without a synthesized power model.
    pub fn energy_joules(&self) -> Option<f64> {
        copernicus_hls::power::energy_joules(self.format, self.partition_size, self.total_seconds())
    }
}

/// Runs the full cross product `workloads × formats × partition_sizes`.
///
/// Each workload is generated once per seed and tiled once per partition
/// size; formats then share the tiling, exactly as the paper reuses its
/// Matlab-preprocessed partitions across format runs.
///
/// # Errors
///
/// Propagates platform construction, encoding and functional-verification
/// failures as typed [`CampaignError`](crate::CampaignError) cell failures.
pub fn characterize(
    workloads: &[Workload],
    formats: &[FormatKind],
    partition_sizes: &[usize],
    cfg: &ExperimentConfig,
) -> Result<Vec<Measurement>, crate::CampaignError> {
    characterize_with(
        workloads,
        formats,
        partition_sizes,
        cfg,
        &mut crate::Instruments::none(),
    )
}

/// [`characterize`] with observers attached: every platform run streams its
/// pipeline events into the instruments' trace sink, campaign counters and
/// histograms accumulate in the metrics registry, and `progress` prints one
/// line per run to stderr.
///
/// With [`Instruments::none`](crate::Instruments::none) the measurements
/// are bit-identical to plain [`characterize`].
///
/// This is the single-threaded convenience entry point: it runs on a fresh
/// [`CampaignRunner::sequential`](crate::CampaignRunner::sequential), so no
/// memoization persists across calls. Hold a
/// [`CampaignRunner`](crate::CampaignRunner) to parallelize the grid or to
/// share the cell cache across overlapping campaigns.
///
/// # Errors
///
/// See [`characterize`].
pub fn characterize_with(
    workloads: &[Workload],
    formats: &[FormatKind],
    partition_sizes: &[usize],
    cfg: &ExperimentConfig,
    instruments: &mut crate::Instruments<'_>,
) -> Result<Vec<Measurement>, crate::CampaignError> {
    crate::CampaignRunner::sequential().characterize_with(
        workloads,
        formats,
        partition_sizes,
        cfg,
        instruments,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterize_covers_the_cross_product() {
        let cfg = ExperimentConfig::quick();
        let workloads = [
            Workload::Random {
                n: 64,
                density: 0.05,
            },
            Workload::Band { n: 64, width: 4 },
        ];
        let formats = [FormatKind::Dense, FormatKind::Csr, FormatKind::Coo];
        let sizes = [8, 16];
        let ms = characterize(&workloads, &formats, &sizes, &cfg).unwrap();
        assert_eq!(ms.len(), 2 * 3 * 2);
        // Dense rows all have σ = 1.
        for m in ms.iter().filter(|m| m.format == FormatKind::Dense) {
            assert_eq!(m.sigma(), 1.0, "{} p={}", m.workload, m.partition_size);
        }
    }

    #[test]
    fn presets_differ_in_scale_and_verification() {
        let q = ExperimentConfig::quick();
        let p = ExperimentConfig::paper();
        assert!(q.sweep_dim < p.sweep_dim);
        assert!(q.hw.verify_functional);
        assert!(!p.hw.verify_functional);
        assert_eq!(p.sweep_dim, 8000);
    }

    #[test]
    fn with_sweep_dim_overrides() {
        let cfg = ExperimentConfig::quick().with_sweep_dim(999);
        assert_eq!(cfg.sweep_dim, 999);
    }

    #[test]
    fn measurements_expose_consistent_metrics() {
        let cfg = ExperimentConfig::quick();
        let ms = characterize(
            &[Workload::Band { n: 96, width: 16 }],
            &[FormatKind::Lil],
            &[16],
            &cfg,
        )
        .unwrap();
        let m = &ms[0];
        assert_eq!(m.class, WorkloadClass::Band);
        assert!(m.density > 0.0);
        assert!(m.balance_ratio() > 0.0);
        assert!(m.throughput() > 0.0);
        assert!((0.0..=1.0).contains(&m.bandwidth_utilization()));
        assert!(m.energy_joules().unwrap() > 0.0);
    }
}
