//! Copernicus — characterization of sparse compression formats on a
//! streaming SpMV accelerator.
//!
//! This is the core crate of the reproduction of *"Copernicus:
//! Characterizing the Performance Implications of Compression Formats Used
//! in Sparse Workloads"* (IISWC 2021). It drives the cycle-level platform
//! model of [`copernicus_hls`] over the workload suite of
//! [`copernicus_workloads`] and reproduces every table and figure of the
//! paper's evaluation:
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`experiments::fig03`] | Fig. 3 — partition density & locality stats |
//! | [`experiments::fig04`] | Fig. 4 — σ on SuiteSparse, p = 16 |
//! | [`experiments::fig05`] | Fig. 5 — σ vs density (random) |
//! | [`experiments::fig06`] | Fig. 6 — σ vs band width |
//! | [`experiments::fig07`] | Fig. 7 — mean σ per class × partition size |
//! | [`experiments::fig08`] | Fig. 8 — memory vs compute latency (balance) |
//! | [`experiments::fig09`] | Fig. 9 — throughput vs latency |
//! | [`experiments::fig10`] | Fig. 10 — bandwidth utilization vs density |
//! | [`experiments::fig11`] | Fig. 11 — bandwidth utilization vs width |
//! | [`experiments::fig12`] | Fig. 12 — mean bandwidth utilization |
//! | [`experiments::table1`] | Table 1 — the workload registry |
//! | [`experiments::table2`] | Table 2 — resources & dynamic power |
//! | [`experiments::fig13`] | Fig. 13 — dynamic-power breakdown |
//! | [`experiments::fig14`] | Fig. 14 — normalized six-metric summary |
//!
//! # Example
//!
//! ```
//! use copernicus::{characterize, ExperimentConfig};
//! use copernicus_workloads::Workload;
//! use sparsemat::FormatKind;
//!
//! # fn main() -> Result<(), copernicus::CampaignError> {
//! let cfg = ExperimentConfig::quick();
//! let workloads = [Workload::Random { n: 64, density: 0.05 }];
//! let ms = characterize(&workloads, &[FormatKind::Csr, FormatKind::Coo], &[16], &cfg)?;
//! assert_eq!(ms.len(), 2);
//! for m in &ms {
//!     assert!(m.sigma() > 0.0);
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Library paths must propagate typed errors, not die: panicking is reserved
// for test code (see fault::FailureKind for how panics that do slip through
// are contained). CI runs clippy with `-D warnings`, making this a gate.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod campaign;
pub mod experiments;
pub mod fault;
pub mod insights;
pub mod instrument;
pub mod measure;
pub mod plot;
pub mod recommend;
pub mod summary;
pub mod table;

pub use cache::{CacheStats, CachedGrid, WorkloadCache};
pub use campaign::{
    default_jobs, par_map_ordered, try_par_map_ordered, CampaignOutcome, CampaignRunner,
};
pub use fault::{CampaignError, CampaignPolicy, CellFailure, FailureKind, FaultKind, FaultPlan};
pub use insights::{verify as verify_insights, InsightCheck};
pub use instrument::{manifest_for, Instruments};
pub use measure::{characterize, characterize_with, ExperimentConfig, Measurement};
pub use recommend::{recommend, recommend_measured, Goal, Recommendation};
pub use summary::{normalized_summary, MetricKind, SummaryRow};

#[cfg(test)]
pub(crate) mod testsupport {
    //! Shared quick campaign so the experiment tests don't each re-run the
    //! full workload × format × partition cross product.

    use crate::experiments::fig07::all_class_workloads;
    use crate::experiments::{FIGURE_FORMATS, FIGURE_PARTITION_SIZES};
    use crate::{characterize, ExperimentConfig, Measurement};
    use std::sync::OnceLock;

    static CAMPAIGN: OnceLock<Vec<Measurement>> = OnceLock::new();

    /// The quick-preset full campaign, computed once per test binary.
    pub fn campaign() -> &'static [Measurement] {
        CAMPAIGN.get_or_init(|| {
            let cfg = ExperimentConfig::quick();
            characterize(
                &all_class_workloads(&cfg),
                &FIGURE_FORMATS,
                &FIGURE_PARTITION_SIZES,
                &cfg,
            )
            .expect("quick campaign runs")
        })
    }
}
