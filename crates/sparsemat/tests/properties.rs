//! Property-based tests over the whole format zoo.
//!
//! Values are small integers cast to `f32`, so every arithmetic identity
//! tested here is exact regardless of summation order (f32 is exact on
//! integers below 2^24 and all our sums stay far below that).

use proptest::prelude::*;
use sparsemat::{
    ops, Axis, Bcsr, Coo, Csc, Csr, Dia, Dok, Ell, FormatKind, Jds, Lil, Matrix, PartitionGrid,
    Sell, Triplet,
};

/// Strategy: a random COO matrix with unique coordinates and small integer
/// values, shape 1..=20 in each dimension.
fn coo_strategy() -> impl Strategy<Value = Coo<f32>> {
    (1usize..=20, 1usize..=20).prop_flat_map(|(nrows, ncols)| {
        let cells = nrows * ncols;
        proptest::collection::btree_map(
            0..cells,
            // Exclude zero so nnz is exactly the map size.
            prop_oneof![-50i32..0, 1i32..=50],
            0..=cells.min(60),
        )
        .prop_map(move |map| {
            let triplets = map
                .into_iter()
                .map(|(cell, v)| Triplet::new(cell / ncols, cell % ncols, v as f32))
                .collect();
            Coo::from_triplets(nrows, ncols, triplets).expect("coords in range")
        })
    })
}

/// Strategy: an integer-valued operand vector matched to `ncols`.
fn operand(ncols: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec((-10i32..=10).prop_map(|v| v as f32), ncols)
}

proptest! {
    #[test]
    fn every_format_round_trips_through_dense(coo in coo_strategy()) {
        let dense = coo.to_dense();
        for kind in FormatKind::ALL {
            let m = sparsemat::AnyMatrix::encode(&coo, kind);
            prop_assert!(dense.structurally_eq(&m), "{kind} altered the matrix");
            prop_assert_eq!(m.nnz(), coo.nnz(), "{} changed nnz", kind);
        }
    }

    #[test]
    fn every_format_spmv_equals_dense_spmv(
        (coo, x) in coo_strategy().prop_flat_map(|c| {
            let n = c.ncols();
            (Just(c), operand(n))
        })
    ) {
        let expect = coo.to_dense().spmv(&x).unwrap();
        for kind in FormatKind::ALL {
            let m = sparsemat::AnyMatrix::encode(&coo, kind);
            prop_assert_eq!(m.spmv(&x).unwrap(), expect.clone(), "{} spmv diverged", kind);
        }
    }

    #[test]
    fn conversion_composes_csr_csc_bcsr(coo in coo_strategy()) {
        // A chain of conversions through structurally different formats must
        // preserve the entry set exactly.
        let csr = Csr::from(&coo);
        let csc = Csc::from(&csr.to_coo());
        let bcsr = Bcsr::from(&csc.to_coo());
        let dia = Dia::from(&bcsr.to_coo());
        prop_assert!(coo.to_dense().structurally_eq(&dia));
    }

    #[test]
    fn transpose_is_involutive(coo in coo_strategy()) {
        let csr = Csr::from(&coo);
        prop_assert_eq!(csr.transpose().transpose(), csr);
        let t2 = coo.transpose().transpose();
        prop_assert!(coo.to_dense().structurally_eq(&t2));
    }

    #[test]
    fn csr_transpose_equals_csc_content(coo in coo_strategy()) {
        // A^T in CSR must hold the same entries as A read column-wise.
        let t = Csr::from(&coo).transpose();
        let csc = Csc::from(&coo);
        for tr in t.triplets() {
            prop_assert_eq!(csc.get(tr.col, tr.row), tr.val);
        }
    }

    #[test]
    fn compress_is_idempotent_and_canonical(coo in coo_strategy()) {
        let mut a = coo.clone();
        a.compress();
        prop_assert!(a.is_compressed());
        let mut b = a.clone();
        b.compress();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn partition_reassembly_is_lossless(coo in coo_strategy(), size in 1usize..=9) {
        let grid = PartitionGrid::new(&coo, size).unwrap();
        prop_assert!(coo.to_dense().structurally_eq(&grid.reassemble()));
        prop_assert_eq!(grid.nnz(), coo.nnz());
        // Every retained tile is genuinely non-zero.
        prop_assert!(grid.partitions().iter().all(|p| p.nnz() > 0));
    }

    #[test]
    fn partition_stats_are_percentages(coo in coo_strategy(), size in 1usize..=9) {
        let stats = PartitionGrid::new(&coo, size).unwrap().stats();
        for v in [
            stats.partition_density_pct,
            stats.row_density_pct,
            stats.nonzero_row_share_pct,
        ] {
            prop_assert!((0.0..=100.0).contains(&v), "{v} outside [0, 100]");
        }
        prop_assert!((0.0..=1.0).contains(&stats.nonzero_tile_share));
    }

    #[test]
    fn ell_width_is_max_row_population(coo in coo_strategy()) {
        let ell = Ell::from(&coo);
        let csr = Csr::from(&coo);
        prop_assert_eq!(ell.width(), csr.max_row_nnz());
        prop_assert_eq!(ell.padding() + ell.nnz(), ell.stored_slots());
    }

    #[test]
    fn sell_never_pads_more_than_ell(coo in coo_strategy(), chunk in 1usize..=8) {
        let sell = Sell::from_coo(&coo, chunk).unwrap();
        let ell = Ell::from(&coo);
        prop_assert!(sell.padding() <= ell.padding());
    }

    #[test]
    fn jds_diagonal_lengths_are_non_increasing(coo in coo_strategy()) {
        let jds = Jds::from_coo(&coo);
        let lens: Vec<usize> = (0..jds.num_jagged_diagonals()).map(|d| jds.jd_len(d)).collect();
        prop_assert!(lens.windows(2).all(|w| w[0] >= w[1]), "lens {lens:?}");
        prop_assert_eq!(lens.iter().sum::<usize>(), coo.nnz());
    }

    #[test]
    fn dia_stores_exactly_the_occupied_diagonals(coo in coo_strategy()) {
        let dia = Dia::from(&coo);
        prop_assert_eq!(dia.offsets().to_vec(), coo.diagonal_offsets());
        // All stored values (padding included) ≥ nnz.
        prop_assert!(dia.stored_values() >= dia.nnz());
    }

    #[test]
    fn lil_orientations_agree(coo in coo_strategy()) {
        let cols = Lil::from_coo_columns(&coo);
        let rows = Lil::from_coo_rows(&coo);
        prop_assert_eq!(cols.triplets(), rows.triplets());
        prop_assert_eq!(cols.axis(), Axis::Columns);
        // Column orientation: distinct cross indices = non-zero rows.
        prop_assert_eq!(cols.distinct_cross_indices(), coo.nonzero_rows());
    }

    #[test]
    fn bcsr_block_invariants(coo in coo_strategy(), block in 1usize..=6) {
        let b = Bcsr::from_coo(&coo, block).unwrap();
        prop_assert_eq!(b.stored_values(), b.num_blocks() * block * block);
        prop_assert!(b.nonzero_block_rows() <= b.block_rows());
        prop_assert!(b.nnz() <= b.stored_values());
        prop_assert!(coo.to_dense().structurally_eq(&b));
    }

    #[test]
    fn dok_point_updates_match_dense(coo in coo_strategy()) {
        let mut dok = Dok::from(&coo);
        let mut dense = coo.to_dense();
        // Overwrite the first cell and delete by writing zero.
        dok.set(0, 0, 9.0).unwrap();
        dense[(0, 0)] = 9.0;
        prop_assert!(dense.structurally_eq(&dok));
        dok.set(0, 0, 0.0).unwrap();
        dense[(0, 0)] = 0.0;
        prop_assert!(dense.structurally_eq(&dok));
    }

    #[test]
    fn add_sub_scale_identities(coo in coo_strategy()) {
        // A + A == 2A, A - A == 0.
        let twice = ops::add(&coo, &coo).unwrap();
        let scaled = ops::scale(&coo, 2.0);
        prop_assert!(twice.to_dense().structurally_eq(&scaled));
        prop_assert_eq!(ops::sub(&coo, &coo).unwrap().nnz(), 0);
    }

    #[test]
    fn spmm_against_dense_reference(
        (a, b) in coo_strategy().prop_flat_map(|a| {
            let inner = a.ncols();
            let b = (1usize..=12).prop_flat_map(move |ncols| {
                let cells = inner * ncols;
                proptest::collection::btree_map(
                    0..cells,
                    prop_oneof![-9i32..0, 1i32..=9],
                    0..=cells.min(40),
                )
                .prop_map(move |map| {
                    let triplets = map
                        .into_iter()
                        .map(|(cell, v)| Triplet::new(cell / ncols, cell % ncols, v as f32))
                        .collect();
                    Coo::from_triplets(inner, ncols, triplets).expect("coords in range")
                })
            });
            (Just(a), b)
        })
    ) {
        let p = ops::spmm(&Csr::from(&a), &Csr::from(&b)).unwrap();
        let ad = a.to_dense();
        let bd = b.to_dense();
        for r in 0..a.nrows() {
            for c in 0..b.ncols() {
                let want: f32 = (0..a.ncols()).map(|k| ad[(r, k)] * bd[(k, c)]).sum();
                prop_assert_eq!(p.get(r, c), want);
            }
        }
    }
}

/// Strategy: a COO matrix that may carry duplicate coordinates and explicit
/// zeros — the dirty inputs the in-place rebuilds must hand off to the
/// allocating conversions bit-for-bit.
fn messy_coo_strategy() -> impl Strategy<Value = Coo<f32>> {
    (1usize..=16, 1usize..=16).prop_flat_map(|(nrows, ncols)| {
        let cells = nrows * ncols;
        proptest::collection::vec((0..cells, -5i32..=5), 0..=cells.min(50)).prop_map(move |pairs| {
            let triplets = pairs
                .into_iter()
                .map(|(cell, v)| Triplet::new(cell / ncols, cell % ncols, v as f32))
                .collect();
            Coo::from_triplets(nrows, ncols, triplets).expect("coords in range")
        })
    })
}

proptest! {
    /// The buffer-reusing rebuilds must equal the allocating `From`
    /// conversions exactly — on clean tiles (fast path) and on matrices
    /// with duplicates or explicit zeros (fallback path) — even when the
    /// target still holds an unrelated previous matrix.
    #[test]
    fn in_place_rebuilds_equal_the_allocating_conversions(
        (first, second) in (messy_coo_strategy(), messy_coo_strategy())
    ) {
        let mut tmp = Vec::new();
        let mut csr = Csr::<f32>::new(1, 1);
        let mut csc = Csc::<f32>::new(1, 1);
        let mut dense = sparsemat::Dense::<f32>::zeros(1, 1);
        let mut ell = Ell::from(&Coo::<f32>::new(1, 1));
        let mut lil = Lil::new(1, 1, Axis::Columns);
        let mut dia = Dia::from(&Coo::<f32>::new(1, 1));
        let mut bcsr = Bcsr::from(&Coo::<f32>::new(1, 1));
        let mut coo_buf = Coo::<f32>::new(1, 1);
        // Two rounds through the same targets: the second rebuild starts
        // from dirty buffers of a different shape.
        for coo in [&first, &second] {
            csr.assign_from_coo(coo, &mut tmp);
            prop_assert_eq!(&csr, &Csr::from(coo));
            csc.assign_from_coo(coo, &mut tmp);
            prop_assert_eq!(&csc, &Csc::from(coo));
            dense.assign_from_coo(coo);
            prop_assert_eq!(&dense, &sparsemat::Dense::from(coo));
            ell.assign_from_coo_natural(coo, &mut tmp);
            prop_assert_eq!(&ell, &Ell::from_coo_natural(coo));
            lil.assign_from_coo_columns(coo, &mut tmp);
            prop_assert_eq!(&lil, &Lil::from_coo_columns(coo));
            dia.assign_from_coo(coo);
            prop_assert_eq!(&dia, &Dia::from_coo(coo));
            bcsr.assign_from_coo(coo, 4, &mut tmp).unwrap();
            prop_assert_eq!(&bcsr, &Bcsr::from_coo(coo, 4).unwrap());
            coo_buf.assign_from(coo);
            coo_buf.compress();
            let mut reference = coo.clone();
            reference.compress();
            prop_assert_eq!(&coo_buf, &reference);
        }
    }
}
