//! Compressed sparse column (CSC) format.

use crate::triplet::sort_col_major;
use crate::{check_spmv_operand, Coo, FormatKind, Matrix, Scalar, SparseError, Triplet};

/// Compressed sparse column matrix.
///
/// CSC follows the same rule as CSR (§2) with rows and columns swapped:
/// `values` stores entries column by column, `indices` holds their row
/// indices, `offsets` delimits columns.
///
/// Copernicus includes CSC as the deliberate worst case for its row-oriented
/// SpMV hardware (§5.2, Listing 3): "the decompression mechanism must
/// iteratively traverse all the columns of the matrix to find the values
/// corresponding to the current row", which the paper measures at up to
/// 21–30× the dense baseline's computation latency.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Csc<T> {
    nrows: usize,
    ncols: usize,
    offsets: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> Csc<T> {
    /// Creates an empty CSC matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Csc {
            nrows,
            ncols,
            offsets: vec![0; ncols + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a CSC matrix from its three raw arrays.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] under the same conditions as
    /// [`Csr::from_raw_parts`](crate::Csr::from_raw_parts), with rows and
    /// columns exchanged.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        offsets: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        if offsets.len() != ncols + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "offsets length {} != ncols + 1 = {}",
                offsets.len(),
                ncols + 1
            )));
        }
        if offsets.first() != Some(&0) {
            return Err(SparseError::InvalidStructure(
                "offsets must start at 0".into(),
            ));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::InvalidStructure(
                "offsets must be non-decreasing".into(),
            ));
        }
        if indices.len() != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "indices length {} != values length {}",
                indices.len(),
                values.len()
            )));
        }
        if *offsets.last().expect("offsets non-empty") != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "last offset {} != number of entries {}",
                offsets.last().unwrap(),
                values.len()
            )));
        }
        for c in 0..ncols {
            let col = &indices[offsets[c]..offsets[c + 1]];
            if col.windows(2).any(|w| w[0] >= w[1]) {
                return Err(SparseError::InvalidStructure(format!(
                    "row indices in column {c} are not strictly increasing"
                )));
            }
            if let Some(&r) = col.last() {
                if r >= nrows {
                    return Err(SparseError::InvalidStructure(format!(
                        "row index {r} out of range in column {c} (nrows = {nrows})"
                    )));
                }
            }
        }
        Ok(Csc {
            nrows,
            ncols,
            offsets,
            indices,
            values,
        })
    }

    /// The column-pointer array (`ncols + 1` entries, starting at 0).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The row-index array, column by column.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The stored values, column by column.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Number of entries stored in column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= ncols()`.
    pub fn col_nnz(&self, c: usize) -> usize {
        assert!(c < self.ncols, "column {c} out of bounds");
        self.offsets[c + 1] - self.offsets[c]
    }

    /// Iterates over `(row, value)` pairs of column `c` in ascending row
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `c >= ncols()`.
    pub fn col_entries(&self, c: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        assert!(c < self.ncols, "column {c} out of bounds");
        let range = self.offsets[c]..self.offsets[c + 1];
        self.indices[range.clone()]
            .iter()
            .zip(&self.values[range])
            .map(|(&r, &v)| (r, v))
    }

    /// The length of the longest column.
    pub fn max_col_nnz(&self) -> usize {
        (0..self.ncols).map(|c| self.col_nnz(c)).max().unwrap_or(0)
    }

    /// Rebuilds this matrix in place from `coo`, reusing every buffer
    /// (including the caller's triplet scratch), producing exactly the
    /// matrix [`Csc::from`] builds.
    ///
    /// Duplicate-free, zero-free inputs rebuild without allocating once
    /// capacities are warm; inputs that need duplicate merging fall back to
    /// the allocating conversion so the merge's float summation order is
    /// untouched.
    pub fn assign_from_coo(&mut self, coo: &Coo<T>, tmp: &mut Vec<Triplet<T>>) {
        tmp.clear();
        tmp.extend(coo.iter().copied());
        // Unique (col, row) keys make the unstable sort deterministic and
        // equal to the stable sort the fallback uses.
        tmp.sort_unstable_by_key(|t| (t.col, t.row));
        let clean = tmp
            .windows(2)
            .all(|w| (w[0].col, w[0].row) < (w[1].col, w[1].row))
            && tmp.iter().all(|t| !t.val.is_zero());
        if !clean {
            *self = Csc::from(coo);
            return;
        }
        self.nrows = coo.nrows();
        self.ncols = coo.ncols();
        self.offsets.clear();
        self.offsets.resize(self.ncols + 1, 0);
        for t in tmp.iter() {
            self.offsets[t.col + 1] += 1;
        }
        for i in 0..self.ncols {
            self.offsets[i + 1] += self.offsets[i];
        }
        self.indices.clear();
        self.indices.extend(tmp.iter().map(|t| t.row));
        self.values.clear();
        self.values.extend(tmp.iter().map(|t| t.val));
    }
}

impl<T: Scalar> Matrix<T> for Csc<T> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.values.len()
    }

    fn get(&self, row: usize, col: usize) -> T {
        assert!(
            row < self.nrows && col < self.ncols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        let range = self.offsets[col]..self.offsets[col + 1];
        match self.indices[range.clone()].binary_search(&row) {
            Ok(pos) => self.values[range.start + pos],
            Err(_) => T::ZERO,
        }
    }

    fn triplets(&self) -> Vec<Triplet<T>> {
        let mut out = Vec::with_capacity(self.nnz());
        for c in 0..self.ncols {
            for (r, v) in self.col_entries(c) {
                out.push(Triplet::new(r, c, v));
            }
        }
        out
    }

    fn spmv(&self, x: &[T]) -> Result<Vec<T>, SparseError> {
        check_spmv_operand(self, x)?;
        // Column scatter: y += A[:, c] * x[c], the natural CSC traversal.
        let mut y = vec![T::ZERO; self.nrows];
        for (c, &xc) in x.iter().enumerate() {
            if xc.is_zero() {
                continue;
            }
            for (r, v) in self.col_entries(c) {
                y[r] += v * xc;
            }
        }
        Ok(y)
    }

    fn kind(&self) -> FormatKind {
        FormatKind::Csc
    }
}

impl<T: Scalar> From<&Coo<T>> for Csc<T> {
    fn from(coo: &Coo<T>) -> Self {
        let mut ts = coo.triplets();
        sort_col_major(&mut ts);
        let mut merged: Vec<Triplet<T>> = Vec::with_capacity(ts.len());
        for t in ts {
            match merged.last_mut() {
                Some(last) if last.row == t.row && last.col == t.col => last.val += t.val,
                _ => merged.push(t),
            }
        }
        merged.retain(|t| !t.val.is_zero());

        let mut offsets = vec![0usize; coo.ncols() + 1];
        for t in &merged {
            offsets[t.col + 1] += 1;
        }
        for i in 0..coo.ncols() {
            offsets[i + 1] += offsets[i];
        }
        let indices = merged.iter().map(|t| t.row).collect();
        let values = merged.iter().map(|t| t.val).collect();
        Csc {
            nrows: coo.nrows(),
            ncols: coo.ncols(),
            offsets,
            indices,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Csr;

    fn sample() -> Csc<f32> {
        // 1 0 2
        // 0 0 0
        // 0 3 0
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(2, 1, 3.0).unwrap();
        Csc::from(&coo)
    }

    #[test]
    fn structure_is_column_oriented() {
        let m = sample();
        assert_eq!(m.offsets(), &[0, 1, 2, 3]);
        assert_eq!(m.indices(), &[0, 2, 0]);
        assert_eq!(m.values(), &[1.0, 3.0, 2.0]);
    }

    #[test]
    fn get_hits_and_misses() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(2, 1), 3.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn col_statistics() {
        let m = sample();
        assert_eq!(m.col_nnz(1), 1);
        assert_eq!(m.max_col_nnz(), 1);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(m.spmv(&x).unwrap(), m.to_dense().spmv(&x).unwrap());
    }

    #[test]
    fn csc_equals_transposed_csr_of_transpose() {
        let m = sample();
        let csr = Csr::from(&m.to_coo());
        // Same entry set in both formats.
        let mut a = m.triplets();
        let mut b = csr.triplets();
        crate::triplet::sort_row_major(&mut a);
        crate::triplet::sort_row_major(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn from_raw_parts_validates() {
        assert!(
            Csc::<f32>::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok()
        );
        assert!(Csc::<f32>::from_raw_parts(2, 2, vec![0, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        assert!(
            Csc::<f32>::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 9], vec![1.0, 2.0]).is_err()
        );
        assert!(
            Csc::<f32>::from_raw_parts(1, 2, vec![1, 1, 2], vec![0, 0], vec![1.0, 2.0]).is_err()
        );
    }

    #[test]
    fn spmv_skips_zero_operand_entries() {
        let m = sample();
        // x[2] = 0 means column 2's scatter is skipped; result must still be
        // exact.
        let x = [1.0, 1.0, 0.0];
        assert_eq!(m.spmv(&x).unwrap(), m.to_dense().spmv(&x).unwrap());
    }

    #[test]
    fn round_trip_via_coo() {
        let m = sample();
        assert_eq!(Csc::from(&m.to_coo()), m);
    }
}
