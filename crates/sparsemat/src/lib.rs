//! Sparse-matrix substrate for the Copernicus characterization.
//!
//! This crate implements every compression format studied by the paper
//! *Copernicus: Characterizing the Performance Implications of Compression
//! Formats Used in Sparse Workloads* (IISWC 2021) — plus the ELL variants it
//! discusses — as first-class, losslessly convertible matrix types:
//!
//! | Type | Paper section | Notes |
//! |---|---|---|
//! | [`Dense`] | baseline | row-major dense storage |
//! | [`Csr`] / [`Csc`] | §2 CSR/CSC | offsets + indices + values |
//! | [`Bcsr`] | §2 BCSR/BCSC | block-wise CSR, any square block size |
//! | [`Coo`] | §2 COO | triplet list; the conversion hub |
//! | [`Dok`] | §2 DOK | hash-map of (row, col) → value |
//! | [`Lil`] | §2 LIL | per-line lists; Copernicus uses column lists |
//! | [`Ell`] | §2 ELL | fixed-width rows with padding |
//! | [`Sell`] | §2 SELL | row-sliced ELL |
//! | [`Jds`] | §2 (ELL variants) | jagged diagonal storage |
//! | [`Dia`] | §2 DIA | non-zero diagonals with offset headers |
//!
//! Every format implements the [`Matrix`] trait (shape, random access,
//! triplet iteration, a format-native [`Matrix::spmv`]) and converts to and
//! from [`Coo`], which makes the whole conversion graph commute.
//!
//! The crate also provides [`partition`] — the tiling machinery the paper
//! uses to apply compression "only on the non-zero partitions of large
//! matrices" (§4.1) — including the per-partition density statistics of
//! Fig. 3.
//!
//! # Example
//!
//! ```
//! use sparsemat::{Coo, Csr, Matrix};
//!
//! # fn main() -> Result<(), sparsemat::SparseError> {
//! let mut coo = Coo::<f32>::new(4, 4);
//! coo.push(0, 1, 2.0)?;
//! coo.push(2, 3, -1.0)?;
//! coo.push(3, 0, 4.0)?;
//!
//! let csr = Csr::from(&coo);
//! assert_eq!(csr.nnz(), 3);
//!
//! let y = csr.spmv(&[1.0, 1.0, 1.0, 1.0])?;
//! assert_eq!(y, vec![2.0, 0.0, -1.0, 4.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bcsc;
pub mod bcsr;
pub mod convert;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod dia;
pub mod dok;
pub mod ell;
pub mod ellcoo;
pub mod error;
pub mod jds;
pub mod lil;
pub mod ops;
pub mod partition;
pub mod scalar;
pub mod sell;
pub mod sellcs;
pub mod triplet;

pub use bcsc::Bcsc;
pub use bcsr::Bcsr;
pub use convert::AnyMatrix;
pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use dense::Dense;
pub use dia::Dia;
pub use dok::Dok;
pub use ell::Ell;
pub use ellcoo::EllCoo;
pub use error::SparseError;
pub use jds::Jds;
pub use lil::{Axis, Lil};
pub use partition::{Partition, PartitionGrid, PartitionStats};
pub use scalar::Scalar;
pub use sell::Sell;
pub use sellcs::SellCSigma;
pub use triplet::Triplet;

use std::fmt::Debug;

/// The compression formats studied by Copernicus, as a plain identifier.
///
/// `Dense` is the paper's baseline; the seven characterized formats are
/// `Csr`, `Csc`, `Bcsr`, `Coo`, `Lil`, `Ell` and `Dia`. `Dok`, `Sell` and
/// `Jds` are the variants §2 discusses alongside them.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum FormatKind {
    /// Row-major dense baseline.
    Dense,
    /// Compressed sparse row.
    Csr,
    /// Compressed sparse column.
    Csc,
    /// Block compressed sparse row (4×4 blocks in the paper).
    Bcsr,
    /// Block compressed sparse column.
    Bcsc,
    /// Coordinate (triplet) list.
    Coo,
    /// Dictionary of keys.
    Dok,
    /// List of lists (column lists in Copernicus).
    Lil,
    /// ELLPACK with padding.
    Ell,
    /// Sliced ELLPACK.
    Sell,
    /// Jagged diagonal storage.
    Jds,
    /// Diagonal storage.
    Dia,
}

impl FormatKind {
    /// The seven formats characterized by the paper plus the dense baseline,
    /// in the order the paper's figures list them.
    pub const CHARACTERIZED: [FormatKind; 8] = [
        FormatKind::Dense,
        FormatKind::Csr,
        FormatKind::Bcsr,
        FormatKind::Csc,
        FormatKind::Lil,
        FormatKind::Ell,
        FormatKind::Coo,
        FormatKind::Dia,
    ];

    /// All formats implemented by this crate.
    pub const ALL: [FormatKind; 12] = [
        FormatKind::Dense,
        FormatKind::Csr,
        FormatKind::Csc,
        FormatKind::Bcsr,
        FormatKind::Bcsc,
        FormatKind::Coo,
        FormatKind::Dok,
        FormatKind::Lil,
        FormatKind::Ell,
        FormatKind::Sell,
        FormatKind::Jds,
        FormatKind::Dia,
    ];

    /// Short uppercase label used in tables and figures (e.g. `"BCSR"`).
    pub fn label(self) -> &'static str {
        match self {
            FormatKind::Dense => "DENSE",
            FormatKind::Csr => "CSR",
            FormatKind::Csc => "CSC",
            FormatKind::Bcsr => "BCSR",
            FormatKind::Bcsc => "BCSC",
            FormatKind::Coo => "COO",
            FormatKind::Dok => "DOK",
            FormatKind::Lil => "LIL",
            FormatKind::Ell => "ELL",
            FormatKind::Sell => "SELL",
            FormatKind::Jds => "JDS",
            FormatKind::Dia => "DIA",
        }
    }
}

impl std::fmt::Display for FormatKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for FormatKind {
    type Err = SparseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let up = s.trim().to_ascii_uppercase();
        FormatKind::ALL
            .iter()
            .copied()
            .find(|k| k.label() == up)
            .ok_or_else(|| SparseError::UnknownFormat(s.to_owned()))
    }
}

/// Common interface implemented by every matrix format in this crate.
///
/// The trait deliberately stays small: shape, random access, triplet
/// iteration and a format-native sparse matrix–vector product. Conversions
/// are expressed through [`Coo`] (`to_coo` here, `From<&Coo>` on each
/// concrete type) so the conversion graph commutes by construction.
pub trait Matrix<T: Scalar>: Debug {
    /// Number of rows.
    fn nrows(&self) -> usize;

    /// Number of columns.
    fn ncols(&self) -> usize;

    /// Number of explicitly stored non-zero entries.
    ///
    /// Explicit zeros that a format materializes internally (ELL padding,
    /// zeros inside BCSR blocks) do **not** count.
    fn nnz(&self) -> usize;

    /// The value at `(row, col)`, or `T::ZERO` when no entry is stored.
    ///
    /// # Panics
    ///
    /// Panics if `row >= nrows()` or `col >= ncols()`.
    fn get(&self, row: usize, col: usize) -> T;

    /// Copies all stored non-zero entries into a triplet list.
    fn triplets(&self) -> Vec<Triplet<T>>;

    /// Converts to coordinate format, the hub of the conversion graph.
    fn to_coo(&self) -> Coo<T> {
        let mut coo = Coo::with_capacity(self.nrows(), self.ncols(), self.nnz());
        for t in self.triplets() {
            coo.push(t.row, t.col, t.val)
                .expect("triplets() yielded an out-of-bounds entry");
        }
        coo
    }

    /// Materializes the matrix as a dense row-major buffer.
    ///
    /// Triplets are *accumulated*, so formats that permit duplicate
    /// coordinates (an uncompressed [`Coo`]) densify with the same summing
    /// semantics their [`Matrix::spmv`] uses.
    fn to_dense(&self) -> Dense<T> {
        let mut d = Dense::zeros(self.nrows(), self.ncols());
        for t in self.triplets() {
            d[(t.row, t.col)] += t.val;
        }
        d
    }

    /// Sparse matrix–vector product `y = A·x` using the format's native
    /// traversal order (row scan for CSR, column scatter for CSC, diagonal
    /// walk for DIA, …).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] when `x.len() != ncols()`.
    fn spmv(&self, x: &[T]) -> Result<Vec<T>, SparseError>;

    /// Density: `nnz / (nrows · ncols)`; zero for an empty shape.
    fn density(&self) -> f64 {
        let cells = self.nrows() * self.ncols();
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// The [`FormatKind`] tag for this format.
    fn kind(&self) -> FormatKind;
}

/// Validates that an SpMV operand length matches the matrix width.
pub(crate) fn check_spmv_operand<T: Scalar, M: Matrix<T> + ?Sized>(
    m: &M,
    x: &[T],
) -> Result<(), SparseError> {
    if x.len() != m.ncols() {
        return Err(SparseError::ShapeMismatch {
            expected: (m.ncols(), 1),
            found: (x.len(), 1),
        });
    }
    Ok(())
}
