//! Matrix partitioning — §4.1 of the paper.
//!
//! Copernicus never compresses a whole matrix at once: "a common efficient
//! practice is to apply the compression on the smaller partitions of the
//! original matrix [...] by using partitioning, we can eliminate transferring
//! and processing the all-zero partitions." This module tiles a matrix into
//! `p×p` partitions, keeps only the non-zero ones, and computes the Fig.-3
//! statistics (partition density, non-zero-row density, non-zero-row share).

use crate::{Coo, Matrix, Scalar, SparseError, Triplet};

/// The partition sizes the paper sweeps ("practical partition sizes of 8,
/// 16, and 32", §4.2).
pub const PAPER_PARTITION_SIZES: [usize; 3] = [8, 16, 32];

/// One non-zero `p×p` tile of a larger matrix.
///
/// The tile's COO is always shaped `p×p` even at the matrix edge; edge tiles
/// simply have no entries outside the valid region, mirroring the zero
/// padding the hardware's fixed-width engine sees.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition<T> {
    /// Tile row in the partition grid.
    pub grid_row: usize,
    /// Tile column in the partition grid.
    pub grid_col: usize,
    /// The tile's entries with tile-local coordinates, shape `p×p`.
    pub coo: Coo<T>,
}

impl<T: Scalar> Partition<T> {
    /// Number of non-zero entries in the tile.
    pub fn nnz(&self) -> usize {
        self.coo.nnz()
    }

    /// Number of tile rows holding at least one entry.
    pub fn nonzero_rows(&self) -> usize {
        self.coo.nonzero_rows()
    }

    /// Tile density `nnz / p²`.
    pub fn density(&self) -> f64 {
        self.coo.density()
    }
}

/// A matrix tiled into `p×p` partitions with the all-zero tiles dropped.
#[derive(Debug, Clone)]
pub struct PartitionGrid<T> {
    nrows: usize,
    ncols: usize,
    size: usize,
    partitions: Vec<Partition<T>>,
}

impl<T: Scalar> PartitionGrid<T> {
    /// Tiles `matrix` into `size × size` partitions, keeping only non-zero
    /// tiles.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidBlockSize`] when `size == 0`.
    pub fn new<M: Matrix<T>>(matrix: &M, size: usize) -> Result<Self, SparseError> {
        Self::from_triplets(matrix.nrows(), matrix.ncols(), matrix.triplets(), size)
    }

    /// Tiles a triplet list directly (avoids materializing intermediate
    /// formats for very large inputs).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidBlockSize`] when `size == 0`, or
    /// [`SparseError::IndexOutOfBounds`] for a stray triplet.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: Vec<Triplet<T>>,
        size: usize,
    ) -> Result<Self, SparseError> {
        if size == 0 {
            return Err(SparseError::InvalidBlockSize {
                size: 0,
                requirement: "partition size must be positive",
            });
        }
        let mut buckets: std::collections::BTreeMap<(usize, usize), Coo<T>> =
            std::collections::BTreeMap::new();
        for t in triplets {
            if t.row >= nrows || t.col >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    index: (t.row, t.col),
                    shape: (nrows, ncols),
                });
            }
            let key = (t.row / size, t.col / size);
            buckets
                .entry(key)
                .or_insert_with(|| Coo::new(size, size))
                .push(t.row % size, t.col % size, t.val)?;
        }
        // COO pushes drop explicit zeros, so a bucket can end up empty only
        // if every triplet it received was zero; drop those.
        buckets.retain(|_, coo| coo.nnz() > 0);
        let partitions = buckets
            .into_iter()
            .map(|((grid_row, grid_col), coo)| Partition {
                grid_row,
                grid_col,
                coo,
            })
            .collect();
        Ok(PartitionGrid {
            nrows,
            ncols,
            size,
            partitions,
        })
    }

    /// Original matrix shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Partition edge length `p`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Grid dimensions `(tile_rows, tile_cols)` including all-zero tiles.
    pub fn grid_shape(&self) -> (usize, usize) {
        (
            self.nrows.div_ceil(self.size),
            self.ncols.div_ceil(self.size),
        )
    }

    /// Total number of tiles in the grid, zero tiles included.
    pub fn total_tiles(&self) -> usize {
        let (r, c) = self.grid_shape();
        r * c
    }

    /// The retained non-zero tiles in row-major grid order.
    pub fn partitions(&self) -> &[Partition<T>] {
        &self.partitions
    }

    /// Number of non-zero tiles.
    pub fn nonzero_tiles(&self) -> usize {
        self.partitions.len()
    }

    /// Total non-zero entries across all tiles (= the matrix's nnz).
    pub fn nnz(&self) -> usize {
        self.partitions.iter().map(Partition::nnz).sum()
    }

    /// The Fig.-3 statistics for this tiling.
    pub fn stats(&self) -> PartitionStats {
        PartitionStats::measure(self)
    }

    /// Reassembles the original matrix from its tiles (for testing the
    /// tiling is lossless).
    pub fn reassemble(&self) -> Coo<T> {
        let mut out = Coo::with_capacity(self.nrows, self.ncols, self.nnz());
        for p in &self.partitions {
            for t in p.coo.iter() {
                out.push(
                    p.grid_row * self.size + t.row,
                    p.grid_col * self.size + t.col,
                    t.val,
                )
                .expect("tile entry within matrix bounds");
            }
        }
        out
    }
}

/// The per-partition density and locality statistics of Fig. 3.
///
/// All three are averages over the **non-zero** partitions only, expressed
/// as percentages exactly as the figure plots them:
/// (a) non-zero values in partitions, (b) non-zero values in non-zero rows,
/// (c) non-zero rows in partitions.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PartitionStats {
    /// Fig. 3a — mean `nnz / p²` over non-zero partitions, in percent.
    pub partition_density_pct: f64,
    /// Fig. 3b — mean row population `/ p` over the non-zero rows of
    /// non-zero partitions, in percent.
    pub row_density_pct: f64,
    /// Fig. 3c — mean share of non-zero rows per non-zero partition, in
    /// percent.
    pub nonzero_row_share_pct: f64,
    /// Number of non-zero partitions the averages run over.
    pub nonzero_partitions: usize,
    /// Share of grid tiles that are non-zero (spatial-locality indicator).
    pub nonzero_tile_share: f64,
}

impl PartitionStats {
    /// Measures the statistics of a tiled matrix.
    pub fn measure<T: Scalar>(grid: &PartitionGrid<T>) -> Self {
        let p = grid.size() as f64;
        let n = grid.nonzero_tiles();
        if n == 0 {
            return PartitionStats {
                partition_density_pct: 0.0,
                row_density_pct: 0.0,
                nonzero_row_share_pct: 0.0,
                nonzero_partitions: 0,
                nonzero_tile_share: 0.0,
            };
        }
        let mut density_sum = 0.0;
        let mut row_share_sum = 0.0;
        let mut row_density_sum = 0.0;
        let mut row_density_count = 0usize;
        for part in grid.partitions() {
            density_sum += part.nnz() as f64 / (p * p);
            row_share_sum += part.nonzero_rows() as f64 / p;
            for count in part.coo.row_counts() {
                if count > 0 {
                    row_density_sum += count as f64 / p;
                    row_density_count += 1;
                }
            }
        }
        PartitionStats {
            partition_density_pct: 100.0 * density_sum / n as f64,
            row_density_pct: if row_density_count == 0 {
                0.0
            } else {
                100.0 * row_density_sum / row_density_count as f64
            },
            nonzero_row_share_pct: 100.0 * row_share_sum / n as f64,
            nonzero_partitions: n,
            nonzero_tile_share: n as f64 / grid.total_tiles() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo<f32> {
        // 8x8, entries in tiles (0,0) and (1,1) only.
        let mut coo = Coo::new(8, 8);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 2, 2.0).unwrap();
        coo.push(5, 5, 3.0).unwrap();
        coo.push(5, 6, 4.0).unwrap();
        coo.push(7, 4, 5.0).unwrap();
        coo
    }

    #[test]
    fn grid_drops_zero_tiles() {
        let grid = PartitionGrid::new(&sample(), 4).unwrap();
        assert_eq!(grid.grid_shape(), (2, 2));
        assert_eq!(grid.total_tiles(), 4);
        assert_eq!(grid.nonzero_tiles(), 2);
        let coords: Vec<_> = grid
            .partitions()
            .iter()
            .map(|p| (p.grid_row, p.grid_col))
            .collect();
        assert_eq!(coords, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn tiles_use_local_coordinates() {
        let grid = PartitionGrid::new(&sample(), 4).unwrap();
        let tile = &grid.partitions()[1]; // grid (1,1)
        assert_eq!(tile.coo.get(1, 1), 3.0); // matrix (5,5)
        assert_eq!(tile.coo.get(3, 0), 5.0); // matrix (7,4)
    }

    #[test]
    fn reassembly_is_lossless() {
        let coo = sample();
        for size in [1, 2, 3, 4, 5, 8, 16] {
            let grid = PartitionGrid::new(&coo, size).unwrap();
            assert!(
                coo.to_dense().structurally_eq(&grid.reassemble()),
                "size {size}"
            );
            assert_eq!(grid.nnz(), coo.nnz(), "size {size}");
        }
    }

    #[test]
    fn edge_tiles_handle_non_multiple_shapes() {
        let mut coo = Coo::<f32>::new(5, 7);
        coo.push(4, 6, 1.0).unwrap();
        let grid = PartitionGrid::new(&coo, 4).unwrap();
        assert_eq!(grid.grid_shape(), (2, 2));
        assert_eq!(grid.nonzero_tiles(), 1);
        assert!(coo.to_dense().structurally_eq(&grid.reassemble()));
    }

    #[test]
    fn stats_on_known_layout() {
        // One 2x2 tile fully dense, the rest empty.
        let mut coo = Coo::<f32>::new(4, 4);
        for r in 0..2 {
            for c in 0..2 {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        let grid = PartitionGrid::new(&coo, 2).unwrap();
        let stats = grid.stats();
        assert_eq!(stats.nonzero_partitions, 1);
        assert_eq!(stats.partition_density_pct, 100.0);
        assert_eq!(stats.row_density_pct, 100.0);
        assert_eq!(stats.nonzero_row_share_pct, 100.0);
        assert_eq!(stats.nonzero_tile_share, 0.25);
    }

    #[test]
    fn stats_average_over_nonzero_partitions_only() {
        let grid = PartitionGrid::new(&sample(), 4).unwrap();
        let stats = grid.stats();
        // Tile (0,0): 2 entries / 16; tile (1,1): 3 / 16.
        let expect = 100.0 * ((2.0 / 16.0) + (3.0 / 16.0)) / 2.0;
        assert!((stats.partition_density_pct - expect).abs() < 1e-12);
        // Non-zero rows: tile (0,0) rows {0,1}; tile (1,1) rows {1,3}.
        assert!((stats.nonzero_row_share_pct - 50.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_stats_are_zero() {
        let coo = Coo::<f32>::new(16, 16);
        let grid = PartitionGrid::new(&coo, 8).unwrap();
        let stats = grid.stats();
        assert_eq!(stats.nonzero_partitions, 0);
        assert_eq!(stats.partition_density_pct, 0.0);
    }

    #[test]
    fn zero_partition_size_rejected() {
        assert!(matches!(
            PartitionGrid::new(&sample(), 0),
            Err(SparseError::InvalidBlockSize { .. })
        ));
    }
}
