//! Row-major dense matrix — the baseline format of the characterization.

use crate::{check_spmv_operand, Coo, FormatKind, Matrix, Scalar, SparseError, Triplet};
use std::ops::{Index, IndexMut};

/// Row-major dense matrix.
///
/// In the paper this is the `σ = 1` baseline: every entry — zero or not —
/// is transferred and multiplied. It also serves as the ground truth that
/// every sparse format's decoder and SpMV are tested against.
///
/// ```
/// use sparsemat::{Dense, Matrix};
///
/// let mut m = Dense::<f32>::zeros(2, 3);
/// m[(0, 2)] = 5.0;
/// assert_eq!(m.nnz(), 1);
/// assert_eq!(m.get(0, 2), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Dense<T> {
    nrows: usize,
    ncols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Dense<T> {
    /// Creates an all-zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Dense {
            nrows,
            ncols,
            data: vec![T::ZERO; nrows * ncols],
        }
    }

    /// Creates a dense matrix from a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] when `data.len()` differs from
    /// `nrows * ncols`.
    pub fn from_row_major(nrows: usize, ncols: usize, data: Vec<T>) -> Result<Self, SparseError> {
        if data.len() != nrows * ncols {
            return Err(SparseError::ShapeMismatch {
                expected: (nrows, ncols),
                found: (data.len(), 1),
            });
        }
        Ok(Dense { nrows, ncols, data })
    }

    /// Creates the `n×n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Dense::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// A view of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    pub fn row(&self, i: usize) -> &[T] {
        assert!(
            i < self.nrows,
            "row {i} out of bounds ({} rows)",
            self.nrows
        );
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        assert!(
            i < self.nrows,
            "row {i} out of bounds ({} rows)",
            self.nrows
        );
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consumes the matrix and returns the row-major buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Rebuilds this matrix in place from `coo`, reusing the row-major
    /// buffer — exactly the matrix [`Dense::from`] builds (the same
    /// `+=` scatter in entry order), without allocating once the buffer
    /// capacity is warm.
    pub fn assign_from_coo(&mut self, coo: &Coo<T>) {
        self.nrows = coo.nrows();
        self.ncols = coo.ncols();
        self.data.clear();
        self.data.resize(self.nrows * self.ncols, T::ZERO);
        for t in coo.iter() {
            self.data[t.row * self.ncols + t.col] += t.val;
        }
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> Dense<T> {
        let mut t = Dense::zeros(self.ncols, self.nrows);
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Number of rows that contain at least one non-zero entry.
    pub fn nonzero_rows(&self) -> usize {
        (0..self.nrows)
            .filter(|&r| self.row(r).iter().any(|v| !v.is_zero()))
            .count()
    }

    /// Checks bit-exact equality of stored values with another matrix of any
    /// format (shape must match).
    pub fn structurally_eq<M: Matrix<T>>(&self, other: &M) -> bool {
        if self.nrows != other.nrows() || self.ncols != other.ncols() {
            return false;
        }
        (0..self.nrows).all(|r| (0..self.ncols).all(|c| self[(r, c)] == other.get(r, c)))
    }
}

impl<T: Scalar> Index<(usize, usize)> for Dense<T> {
    type Output = T;

    fn index(&self, (r, c): (usize, usize)) -> &T {
        assert!(
            r < self.nrows && c < self.ncols,
            "index ({r}, {c}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        &self.data[r * self.ncols + c]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Dense<T> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        assert!(
            r < self.nrows && c < self.ncols,
            "index ({r}, {c}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        &mut self.data[r * self.ncols + c]
    }
}

impl<T: Scalar> Matrix<T> for Dense<T> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.data.iter().filter(|v| !v.is_zero()).count()
    }

    fn get(&self, row: usize, col: usize) -> T {
        self[(row, col)]
    }

    fn triplets(&self) -> Vec<Triplet<T>> {
        let mut out = Vec::new();
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                let v = self[(r, c)];
                if !v.is_zero() {
                    out.push(Triplet::new(r, c, v));
                }
            }
        }
        out
    }

    fn to_dense(&self) -> Dense<T> {
        self.clone()
    }

    fn spmv(&self, x: &[T]) -> Result<Vec<T>, SparseError> {
        check_spmv_operand(self, x)?;
        let mut y = vec![T::ZERO; self.nrows];
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = self.row(r).iter().zip(x).map(|(&a, &b)| a * b).sum();
        }
        Ok(y)
    }

    fn kind(&self) -> FormatKind {
        FormatKind::Dense
    }
}

impl<T: Scalar> From<&Coo<T>> for Dense<T> {
    fn from(coo: &Coo<T>) -> Self {
        let mut d = Dense::zeros(coo.nrows(), coo.ncols());
        for t in coo.iter() {
            d[(t.row, t.col)] += t.val;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dense<f32> {
        // 0 2 0
        // 1 0 3
        Dense::from_row_major(2, 3, vec![0.0, 2.0, 0.0, 1.0, 0.0, 3.0]).unwrap()
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!((m.nrows(), m.ncols()), (2, 3));
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.density(), 0.5);
    }

    #[test]
    fn from_row_major_rejects_bad_length() {
        assert!(Dense::<f32>::from_row_major(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn identity_spmv_is_identity() {
        let id = Dense::<f32>::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(id.spmv(&x).unwrap(), x.to_vec());
    }

    #[test]
    fn spmv_rejects_wrong_operand_length() {
        let m = sample();
        assert!(matches!(
            m.spmv(&[1.0, 2.0]),
            Err(SparseError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn spmv_matches_manual_computation() {
        let m = sample();
        let y = m.spmv(&[1.0, 10.0, 100.0]).unwrap();
        assert_eq!(y, vec![20.0, 301.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(1, 0), 2.0);
    }

    #[test]
    fn triplets_skip_zeros() {
        let m = sample();
        let ts = m.triplets();
        assert_eq!(ts.len(), 3);
        assert!(ts.iter().all(|t| !t.val.is_zero()));
    }

    #[test]
    fn nonzero_rows_counts_rows_with_entries() {
        let mut m = Dense::<f32>::zeros(4, 4);
        assert_eq!(m.nonzero_rows(), 0);
        m[(1, 2)] = 1.0;
        m[(1, 3)] = 2.0;
        m[(3, 0)] = -1.0;
        assert_eq!(m.nonzero_rows(), 2);
    }

    #[test]
    fn row_views() {
        let mut m = sample();
        assert_eq!(m.row(1), &[1.0, 0.0, 3.0]);
        m.row_mut(0)[0] = 9.0;
        assert_eq!(m.get(0, 0), 9.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = sample();
        let _ = m[(2, 0)];
    }

    #[test]
    fn structural_equality_across_formats() {
        let m = sample();
        let coo = m.to_coo();
        assert!(m.structurally_eq(&coo));
    }
}
