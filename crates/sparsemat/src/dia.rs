//! Diagonal (DIA) format.

use crate::{check_spmv_operand, Coo, FormatKind, Matrix, Scalar, SparseError, Triplet};

/// Diagonal-storage sparse matrix.
///
/// §2 of the paper: "The DIA sparse format operates by specifying a diagonal
/// number (0 for the main diagonal, negative/positive for diagonals which
/// start on a lower/higher row/column) followed by the values that fall on
/// the diagonal." Copernicus calls DIA "the most domain-specific format"
/// studied: near-perfect bandwidth utilization on truly diagonal matrices,
/// but a decompression mechanism that must scan every stored diagonal per
/// output row (§5.2, Listing 7), which hurts as soon as non-zeros scatter
/// over many partially-filled diagonals.
///
/// Each stored diagonal is kept at its full in-matrix length; slots not
/// backed by an entry hold explicit zeros (they are transferred, so they
/// count against bandwidth utilization, but not toward [`Matrix::nnz`]).
#[derive(Debug, Clone)]
pub struct Dia<T> {
    nrows: usize,
    ncols: usize,
    /// Stored diagonal numbers (`col - row`), ascending.
    offsets: Vec<isize>,
    /// `diagonals[k]` — the values of diagonal `offsets[k]`, index 0 at the
    /// diagonal's first in-matrix cell, full in-matrix length.
    diagonals: Vec<Vec<T>>,
    nnz: usize,
    /// Retired diagonal buffers held for reuse by [`Dia::assign_from_coo`]:
    /// when a rebuild stores fewer diagonals than the last one, the surplus
    /// buffers park here (capacity intact) instead of being dropped, so a
    /// later rebuild that grows again stays allocation-free. Never part of
    /// the matrix value — excluded from equality and serialization, which
    /// is why both are written by hand below.
    spare: Vec<Vec<T>>,
}

impl<T: PartialEq> PartialEq for Dia<T> {
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.offsets == other.offsets
            && self.diagonals == other.diagonals
            && self.nnz == other.nnz
    }
}

impl<T: serde::Serialize> serde::Serialize for Dia<T> {
    fn serialize(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("nrows".to_string(), self.nrows.serialize()),
            ("ncols".to_string(), self.ncols.serialize()),
            ("offsets".to_string(), self.offsets.serialize()),
            ("diagonals".to_string(), self.diagonals.serialize()),
            ("nnz".to_string(), self.nnz.serialize()),
        ])
    }
}

impl<T: serde::Deserialize> serde::Deserialize for Dia<T> {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Dia {
            nrows: serde::field(v, "nrows")?,
            ncols: serde::field(v, "ncols")?,
            offsets: serde::field(v, "offsets")?,
            diagonals: serde::field(v, "diagonals")?,
            nnz: serde::field(v, "nnz")?,
            spare: Vec::new(),
        })
    }
}

/// In-matrix length of diagonal `d` (`col - row = d`) of an
/// `nrows × ncols` matrix; zero when the diagonal misses the matrix.
pub fn diagonal_len(nrows: usize, ncols: usize, d: isize) -> usize {
    let (nrows, ncols) = (nrows as isize, ncols as isize);
    if d >= ncols || -d >= nrows {
        return 0;
    }
    // First cell: (max(0,-d), max(0,d)); walk until either edge.
    (nrows.min(ncols - d).min(nrows + d).min(ncols)).max(0) as usize
}

impl<T: Scalar> Dia<T> {
    /// Builds a DIA matrix from COO, storing exactly the occupied diagonals.
    pub fn from_coo(coo: &Coo<T>) -> Self {
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        let offsets = coo.diagonal_offsets();
        let mut diagonals: Vec<Vec<T>> = offsets
            .iter()
            .map(|&d| vec![T::ZERO; diagonal_len(nrows, ncols, d)])
            .collect();
        for t in coo.iter() {
            let d = t.col as isize - t.row as isize;
            let k = offsets.binary_search(&d).expect("diagonal registered");
            // Position along the diagonal = distance from its first cell.
            let first_row = if d < 0 { (-d) as usize } else { 0 };
            diagonals[k][t.row - first_row] += t.val;
        }
        // Duplicate COO entries may cancel; recount and drop empty diagonals.
        let mut kept_offsets = Vec::with_capacity(offsets.len());
        let mut kept_diagonals = Vec::with_capacity(diagonals.len());
        let mut nnz = 0usize;
        for (d, diag) in offsets.into_iter().zip(diagonals) {
            let count = diag.iter().filter(|v| !v.is_zero()).count();
            if count > 0 {
                nnz += count;
                kept_offsets.push(d);
                kept_diagonals.push(diag);
            }
        }
        Dia {
            nrows,
            ncols,
            offsets: kept_offsets,
            diagonals: kept_diagonals,
            nnz,
            spare: Vec::new(),
        }
    }

    /// Rebuilds this matrix in place from `coo`, reusing the offset and
    /// diagonal buffers — exactly the matrix [`Dia::from_coo`] builds (the
    /// same `+=` scatter in entry order). Inputs whose duplicates cancel a
    /// whole diagonal fall back to the allocating conversion for its
    /// compaction pass; everything else rebuilds without allocating once
    /// capacities are warm.
    pub fn assign_from_coo(&mut self, coo: &Coo<T>) {
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        // The registered diagonals, ascending — `diagonal_offsets()`
        // rebuilt into the reused buffer.
        self.offsets.clear();
        self.offsets
            .extend(coo.iter().map(|t| t.col as isize - t.row as isize));
        self.offsets.sort_unstable();
        self.offsets.dedup();
        let num = self.offsets.len();
        // Resize the diagonal list through the spare pool: surplus buffers
        // park there with their capacity, growth takes them back before it
        // ever creates a fresh (allocating) `Vec`.
        while self.diagonals.len() > num {
            if let Some(buf) = self.diagonals.pop() {
                self.spare.push(buf);
            }
        }
        while self.diagonals.len() < num {
            self.diagonals.push(self.spare.pop().unwrap_or_default());
        }
        for (diag, &d) in self.diagonals.iter_mut().zip(self.offsets.iter()) {
            diag.clear();
            diag.resize(diagonal_len(nrows, ncols, d), T::ZERO);
        }
        for t in coo.iter() {
            let d = t.col as isize - t.row as isize;
            let k = self.offsets.binary_search(&d).expect("diagonal registered");
            let first_row = if d < 0 { (-d) as usize } else { 0 };
            self.diagonals[k][t.row - first_row] += t.val;
        }
        let mut nnz = 0usize;
        let mut all_nonempty = true;
        for diag in &self.diagonals {
            let count = diag.iter().filter(|v| !v.is_zero()).count();
            nnz += count;
            all_nonempty &= count > 0;
        }
        if !all_nonempty {
            // Duplicates cancelled a whole diagonal: take the allocating
            // conversion's compaction wholesale.
            *self = Dia::from_coo(coo);
            return;
        }
        self.nrows = nrows;
        self.ncols = ncols;
        self.nnz = nnz;
    }

    /// The stored diagonal numbers (`col - row`), ascending.
    pub fn offsets(&self) -> &[isize] {
        &self.offsets
    }

    /// Number of stored diagonals.
    pub fn num_diagonals(&self) -> usize {
        self.offsets.len()
    }

    /// The values of stored diagonal `k` (full in-matrix length, explicit
    /// zeros where the diagonal is not fully populated).
    ///
    /// # Panics
    ///
    /// Panics if `k >= num_diagonals()`.
    pub fn diagonal(&self, k: usize) -> &[T] {
        &self.diagonals[k]
    }

    /// Total scalars transferred for diagonal values (including the zeros in
    /// partially-filled diagonals, excluding the per-diagonal header).
    pub fn stored_values(&self) -> usize {
        self.diagonals.iter().map(Vec::len).sum()
    }

    /// Whether the matrix is purely diagonal (only offset 0 stored).
    pub fn is_main_diagonal_only(&self) -> bool {
        self.offsets == [0]
    }

    /// Bandwidth of the stored structure: `max(|offset|) * 2 + 1`, or 0 for
    /// an empty matrix — the band width `k` of §3.2.
    pub fn bandwidth(&self) -> usize {
        self.offsets
            .iter()
            .map(|&d| d.unsigned_abs())
            .max()
            .map(|m| 2 * m + 1)
            .unwrap_or(0)
    }
}

impl<T: Scalar> Matrix<T> for Dia<T> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn get(&self, row: usize, col: usize) -> T {
        assert!(
            row < self.nrows && col < self.ncols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        let d = col as isize - row as isize;
        match self.offsets.binary_search(&d) {
            Ok(k) => {
                let first_row = if d < 0 { (-d) as usize } else { 0 };
                self.diagonals[k][row - first_row]
            }
            Err(_) => T::ZERO,
        }
    }

    fn triplets(&self) -> Vec<Triplet<T>> {
        let mut out = Vec::with_capacity(self.nnz);
        for (k, &d) in self.offsets.iter().enumerate() {
            let first_row = if d < 0 { (-d) as usize } else { 0 };
            let first_col = if d > 0 { d as usize } else { 0 };
            for (i, &v) in self.diagonals[k].iter().enumerate() {
                if !v.is_zero() {
                    out.push(Triplet::new(first_row + i, first_col + i, v));
                }
            }
        }
        crate::triplet::sort_row_major(&mut out);
        out
    }

    fn spmv(&self, x: &[T]) -> Result<Vec<T>, SparseError> {
        check_spmv_operand(self, x)?;
        let mut y = vec![T::ZERO; self.nrows];
        for (k, &d) in self.offsets.iter().enumerate() {
            let first_row = if d < 0 { (-d) as usize } else { 0 };
            let first_col = if d > 0 { d as usize } else { 0 };
            for (i, &v) in self.diagonals[k].iter().enumerate() {
                y[first_row + i] += v * x[first_col + i];
            }
        }
        Ok(y)
    }

    fn kind(&self) -> FormatKind {
        FormatKind::Dia
    }
}

impl<T: Scalar> From<&Coo<T>> for Dia<T> {
    fn from(coo: &Coo<T>) -> Self {
        Dia::from_coo(coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tridiagonal(n: usize) -> Coo<f32> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        coo
    }

    #[test]
    fn diagonal_len_formula() {
        assert_eq!(diagonal_len(4, 4, 0), 4);
        assert_eq!(diagonal_len(4, 4, 1), 3);
        assert_eq!(diagonal_len(4, 4, -3), 1);
        assert_eq!(diagonal_len(4, 4, 4), 0);
        assert_eq!(diagonal_len(4, 4, -4), 0);
        assert_eq!(diagonal_len(2, 5, 3), 2);
        assert_eq!(diagonal_len(5, 2, -1), 2);
    }

    #[test]
    fn tridiagonal_structure() {
        let m = Dia::from_coo(&tridiagonal(5));
        assert_eq!(m.offsets(), &[-1, 0, 1]);
        assert_eq!(m.num_diagonals(), 3);
        assert_eq!(m.bandwidth(), 3);
        assert_eq!(m.diagonal(1), &[2.0; 5]);
        assert_eq!(m.stored_values(), 4 + 5 + 4);
    }

    #[test]
    fn main_diagonal_only_detection() {
        let mut coo = Coo::<f32>::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 1.0).unwrap();
        }
        let m = Dia::from_coo(&coo);
        assert!(m.is_main_diagonal_only());
        assert_eq!(m.bandwidth(), 1);
    }

    #[test]
    fn get_and_round_trip() {
        let coo = tridiagonal(6);
        let m = Dia::from_coo(&coo);
        assert_eq!(m.get(2, 3), -1.0);
        assert_eq!(m.get(0, 5), 0.0);
        assert!(coo.to_dense().structurally_eq(&m));
    }

    #[test]
    fn spmv_matches_dense() {
        let coo = tridiagonal(7);
        let m = Dia::from_coo(&coo);
        let x: Vec<f32> = (0..7).map(|i| (i + 1) as f32).collect();
        assert_eq!(m.spmv(&x).unwrap(), coo.to_dense().spmv(&x).unwrap());
    }

    #[test]
    fn partially_filled_diagonal_stores_explicit_zeros() {
        let mut coo = Coo::<f32>::new(5, 5);
        coo.push(0, 0, 1.0).unwrap(); // main diagonal, only one of 5 slots
        let m = Dia::from_coo(&coo);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.stored_values(), 5);
        assert_eq!(m.diagonal(0), &[1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn rectangular_matrices_work() {
        let mut coo = Coo::<f32>::new(3, 6);
        coo.push(0, 4, 2.0).unwrap();
        coo.push(2, 0, 3.0).unwrap();
        let m = Dia::from_coo(&coo);
        assert!(coo.to_dense().structurally_eq(&m));
        let x = vec![1.0f32; 6];
        assert_eq!(m.spmv(&x).unwrap(), coo.to_dense().spmv(&x).unwrap());
    }

    #[test]
    fn cancelling_duplicates_drop_diagonal() {
        let mut coo = Coo::<f32>::new(3, 3);
        coo.push(1, 2, 4.0).unwrap();
        coo.push(1, 2, -4.0).unwrap();
        let m = Dia::from_coo(&coo);
        assert_eq!(m.num_diagonals(), 0);
        assert_eq!(m.nnz(), 0);
    }
}
