//! Compressed sparse row (CSR) format.

use crate::triplet::sort_row_major;
use crate::{check_spmv_operand, Coo, FormatKind, Matrix, Scalar, SparseError, Triplet};

/// Compressed sparse row matrix.
///
/// §2 of the paper: CSR "sequentially stores values in row order in a
/// `values` array while similarly storing their column-index in an `indices`
/// array. Another array, `offsets`, stores index pointers [...] the adjacent
/// pair `[start:stop]` represents a slice from the two first arrays."
///
/// Copernicus's hardware finding for CSR (§5.2, Listing 1): decompression is
/// compute-bound because every row costs one extra BRAM access to `offsets`,
/// and the value/index arrays cannot be partitioned for parallel access
/// because row lengths are data-dependent.
///
/// ```
/// use sparsemat::{Coo, Csr, Matrix};
/// # fn main() -> Result<(), sparsemat::SparseError> {
/// let mut coo = Coo::<f32>::new(3, 3);
/// coo.push(0, 0, 1.0)?;
/// coo.push(0, 2, 2.0)?;
/// coo.push(2, 1, 3.0)?;
/// let csr = Csr::from(&coo);
/// assert_eq!(csr.offsets(), &[0, 2, 2, 3]);
/// assert_eq!(csr.row_entries(0).count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Csr<T> {
    nrows: usize,
    ncols: usize,
    offsets: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> Csr<T> {
    /// Creates an empty CSR matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Csr {
            nrows,
            ncols,
            offsets: vec![0; nrows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a CSR matrix from its three raw arrays.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] when
    /// `offsets.len() != nrows + 1`, offsets are non-monotonic, the final
    /// offset disagrees with the array lengths, `indices.len() !=
    /// values.len()`, a column index is out of range, or column indices are
    /// not strictly increasing within a row.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        offsets: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        if offsets.len() != nrows + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "offsets length {} != nrows + 1 = {}",
                offsets.len(),
                nrows + 1
            )));
        }
        if offsets.first() != Some(&0) {
            return Err(SparseError::InvalidStructure(
                "offsets must start at 0".into(),
            ));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::InvalidStructure(
                "offsets must be non-decreasing".into(),
            ));
        }
        if indices.len() != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "indices length {} != values length {}",
                indices.len(),
                values.len()
            )));
        }
        if *offsets.last().expect("offsets non-empty") != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "last offset {} != number of entries {}",
                offsets.last().unwrap(),
                values.len()
            )));
        }
        for r in 0..nrows {
            let row = &indices[offsets[r]..offsets[r + 1]];
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(SparseError::InvalidStructure(format!(
                    "column indices in row {r} are not strictly increasing"
                )));
            }
            if let Some(&c) = row.last() {
                if c >= ncols {
                    return Err(SparseError::InvalidStructure(format!(
                        "column index {c} out of range in row {r} (ncols = {ncols})"
                    )));
                }
            }
        }
        Ok(Csr {
            nrows,
            ncols,
            offsets,
            indices,
            values,
        })
    }

    /// The row-pointer array (`nrows + 1` entries, starting at 0).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The column-index array, row by row.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The stored values, row by row.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Number of entries stored in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= nrows()`.
    pub fn row_nnz(&self, r: usize) -> usize {
        assert!(r < self.nrows, "row {r} out of bounds");
        self.offsets[r + 1] - self.offsets[r]
    }

    /// Iterates over `(col, value)` pairs of row `r` in ascending column
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `r >= nrows()`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        assert!(r < self.nrows, "row {r} out of bounds");
        let range = self.offsets[r]..self.offsets[r + 1];
        self.indices[range.clone()]
            .iter()
            .zip(&self.values[range])
            .map(|(&c, &v)| (c, v))
    }

    /// The length of the longest row.
    pub fn max_row_nnz(&self) -> usize {
        (0..self.nrows).map(|r| self.row_nnz(r)).max().unwrap_or(0)
    }

    /// Rebuilds this matrix in place from `coo`, reusing every buffer
    /// (including the caller's triplet scratch), producing exactly the
    /// matrix [`Csr::from`] builds.
    ///
    /// Duplicate-free, zero-free inputs — every partition tile a campaign
    /// workload generates — rebuild without allocating once capacities are
    /// warm; inputs that need duplicate merging fall back to the allocating
    /// conversion so the merge's float summation order is untouched.
    pub fn assign_from_coo(&mut self, coo: &Coo<T>, tmp: &mut Vec<Triplet<T>>) {
        tmp.clear();
        tmp.extend(coo.iter().copied());
        // Unique (row, col) keys make the unstable sort deterministic and
        // equal to the stable sort the fallback uses.
        tmp.sort_unstable_by_key(|t| (t.row, t.col));
        let clean = tmp
            .windows(2)
            .all(|w| (w[0].row, w[0].col) < (w[1].row, w[1].col))
            && tmp.iter().all(|t| !t.val.is_zero());
        if !clean {
            *self = Csr::from(coo);
            return;
        }
        self.nrows = coo.nrows();
        self.ncols = coo.ncols();
        self.offsets.clear();
        self.offsets.resize(self.nrows + 1, 0);
        for t in tmp.iter() {
            self.offsets[t.row + 1] += 1;
        }
        for i in 0..self.nrows {
            self.offsets[i + 1] += self.offsets[i];
        }
        self.indices.clear();
        self.indices.extend(tmp.iter().map(|t| t.col));
        self.values.clear();
        self.values.extend(tmp.iter().map(|t| t.val));
    }

    /// The transpose, computed through a CSC-style counting pass.
    pub fn transpose(&self) -> Csr<T> {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut indices = vec![0usize; self.indices.len()];
        let mut values = vec![T::ZERO; self.values.len()];
        for r in 0..self.nrows {
            for (c, v) in self.row_entries(r) {
                let dst = cursor[c];
                indices[dst] = r;
                values[dst] = v;
                cursor[c] += 1;
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            offsets,
            indices,
            values,
        }
    }
}

impl<T: Scalar> Matrix<T> for Csr<T> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.values.len()
    }

    fn get(&self, row: usize, col: usize) -> T {
        assert!(
            row < self.nrows && col < self.ncols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        let range = self.offsets[row]..self.offsets[row + 1];
        match self.indices[range.clone()].binary_search(&col) {
            Ok(pos) => self.values[range.start + pos],
            Err(_) => T::ZERO,
        }
    }

    fn triplets(&self) -> Vec<Triplet<T>> {
        let mut out = Vec::with_capacity(self.nnz());
        for r in 0..self.nrows {
            for (c, v) in self.row_entries(r) {
                out.push(Triplet::new(r, c, v));
            }
        }
        out
    }

    fn spmv(&self, x: &[T]) -> Result<Vec<T>, SparseError> {
        check_spmv_operand(self, x)?;
        let mut y = vec![T::ZERO; self.nrows];
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = self.row_entries(r).map(|(c, v)| v * x[c]).sum();
        }
        Ok(y)
    }

    fn kind(&self) -> FormatKind {
        FormatKind::Csr
    }
}

impl<T: Scalar> From<&Coo<T>> for Csr<T> {
    fn from(coo: &Coo<T>) -> Self {
        let mut ts = coo.triplets();
        sort_row_major(&mut ts);
        // Merge duplicates so the strictly-increasing column invariant holds.
        let mut merged: Vec<Triplet<T>> = Vec::with_capacity(ts.len());
        for t in ts {
            match merged.last_mut() {
                Some(last) if last.row == t.row && last.col == t.col => last.val += t.val,
                _ => merged.push(t),
            }
        }
        merged.retain(|t| !t.val.is_zero());

        let mut offsets = vec![0usize; coo.nrows() + 1];
        for t in &merged {
            offsets[t.row + 1] += 1;
        }
        for i in 0..coo.nrows() {
            offsets[i + 1] += offsets[i];
        }
        let indices = merged.iter().map(|t| t.col).collect();
        let values = merged.iter().map(|t| t.val).collect();
        Csr {
            nrows: coo.nrows(),
            ncols: coo.ncols(),
            offsets,
            indices,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f32> {
        // 1 0 2
        // 0 0 0
        // 0 3 0
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(2, 1, 3.0).unwrap();
        Csr::from(&coo)
    }

    #[test]
    fn structure_matches_paper_example_shape() {
        let m = sample();
        assert_eq!(m.offsets(), &[0, 2, 2, 3]);
        assert_eq!(m.indices(), &[0, 2, 1]);
        assert_eq!(m.values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn get_hits_and_misses() {
        let m = sample();
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(2, 1), 3.0);
    }

    #[test]
    fn row_nnz_and_max() {
        let m = sample();
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.max_row_nnz(), 2);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let x = [2.0, 3.0, 4.0];
        assert_eq!(m.spmv(&x).unwrap(), m.to_dense().spmv(&x).unwrap());
    }

    #[test]
    fn coo_round_trip_preserves_entries() {
        let m = sample();
        let back = Csr::from(&m.to_coo());
        assert_eq!(m, back);
    }

    #[test]
    fn duplicate_triplets_are_merged() {
        let mut coo = Coo::<f32>::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(0, 1, 4.0).unwrap();
        let csr = Csr::from(&coo);
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 1), 5.0);
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
        assert_eq!(m.transpose().get(2, 0), 2.0);
    }

    #[test]
    fn from_raw_parts_validates() {
        // Good.
        assert!(
            Csr::<f32>::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok()
        );
        // Bad offsets length.
        assert!(Csr::<f32>::from_raw_parts(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 2.0]).is_err());
        // Non-monotonic offsets.
        assert!(
            Csr::<f32>::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err()
        );
        // Column out of range.
        assert!(
            Csr::<f32>::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 2.0]).is_err()
        );
        // Duplicate column within a row.
        assert!(Csr::<f32>::from_raw_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        // Length mismatch between indices and values.
        assert!(Csr::<f32>::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0]).is_err());
    }

    #[test]
    fn empty_matrix_works() {
        let m = Csr::<f32>::new(0, 0);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.spmv(&[]).unwrap(), Vec::<f32>::new());
    }
}
