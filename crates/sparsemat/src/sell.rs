//! Sliced ELLPACK (SELL) format.

use crate::ell::PAD;
use crate::{check_spmv_operand, Coo, FormatKind, Matrix, Scalar, SparseError, Triplet};

/// One row-slice of a [`Sell`] matrix: a private ELL block whose width is the
/// longest row inside the slice.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SellSlice<T> {
    /// First matrix row covered by this slice.
    pub first_row: usize,
    /// Number of matrix rows in this slice (the last slice may be short).
    pub rows: usize,
    /// Slot width of this slice.
    pub width: usize,
    /// `indices[local_r * width + s]` — column index or [`PAD`].
    pub indices: Vec<usize>,
    /// `values[local_r * width + s]` — value (zero when padded).
    pub values: Vec<T>,
}

/// Sliced ELLPACK sparse matrix.
///
/// §2 of the paper: "A sliced ELL (SELL) sparse format first slices the
/// dense matrix row-wise in chunks, and then applies ELL on each chunk.
/// Hence, it reduces the overhead of zero paddings for larger matrices."
///
/// Each slice carries its own width, so one pathologically long row only
/// pads its own chunk instead of the whole matrix.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Sell<T> {
    nrows: usize,
    ncols: usize,
    chunk: usize,
    slices: Vec<SellSlice<T>>,
    nnz: usize,
}

impl<T: Scalar> Sell<T> {
    /// The default slice height used when converting via `From<&Coo>`.
    pub const DEFAULT_CHUNK: usize = 8;

    /// Builds a SELL matrix with the given slice height (rows per chunk).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidBlockSize`] when `chunk == 0`.
    pub fn from_coo(coo: &Coo<T>, chunk: usize) -> Result<Self, SparseError> {
        if chunk == 0 {
            return Err(SparseError::InvalidBlockSize {
                size: 0,
                requirement: "slice height must be positive",
            });
        }
        let csr = crate::Csr::from(coo);
        let nrows = coo.nrows();
        let mut slices = Vec::with_capacity(nrows.div_ceil(chunk));
        let mut first_row = 0;
        while first_row < nrows {
            let rows = chunk.min(nrows - first_row);
            let width = (first_row..first_row + rows)
                .map(|r| csr.row_nnz(r))
                .max()
                .unwrap_or(0);
            let mut indices = vec![PAD; rows * width];
            let mut values = vec![T::ZERO; rows * width];
            for local_r in 0..rows {
                for (s, (c, v)) in csr.row_entries(first_row + local_r).enumerate() {
                    indices[local_r * width + s] = c;
                    values[local_r * width + s] = v;
                }
            }
            slices.push(SellSlice {
                first_row,
                rows,
                width,
                indices,
                values,
            });
            first_row += rows;
        }
        Ok(Sell {
            nrows,
            ncols: coo.ncols(),
            chunk,
            slices,
            nnz: csr.nnz(),
        })
    }

    /// The configured slice height.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// The slices in row order.
    pub fn slices(&self) -> &[SellSlice<T>] {
        &self.slices
    }

    /// Total slots stored across all slices, padding included.
    pub fn stored_slots(&self) -> usize {
        self.slices.iter().map(|s| s.indices.len()).sum()
    }

    /// Total padding slots — always at most the equivalent [`crate::Ell`]
    /// padding (the property SELL exists to provide).
    pub fn padding(&self) -> usize {
        self.stored_slots() - self.nnz
    }
}

impl<T: Scalar> Matrix<T> for Sell<T> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn get(&self, row: usize, col: usize) -> T {
        assert!(
            row < self.nrows && col < self.ncols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        let slice = &self.slices[row / self.chunk];
        let local_r = row - slice.first_row;
        for s in 0..slice.width {
            let c = slice.indices[local_r * slice.width + s];
            if c == col {
                return slice.values[local_r * slice.width + s];
            }
            if c == PAD {
                break;
            }
        }
        T::ZERO
    }

    fn triplets(&self) -> Vec<Triplet<T>> {
        let mut out = Vec::with_capacity(self.nnz);
        for slice in &self.slices {
            for local_r in 0..slice.rows {
                for s in 0..slice.width {
                    let c = slice.indices[local_r * slice.width + s];
                    if c == PAD {
                        break;
                    }
                    out.push(Triplet::new(
                        slice.first_row + local_r,
                        c,
                        slice.values[local_r * slice.width + s],
                    ));
                }
            }
        }
        out
    }

    fn spmv(&self, x: &[T]) -> Result<Vec<T>, SparseError> {
        check_spmv_operand(self, x)?;
        let mut y = vec![T::ZERO; self.nrows];
        for slice in &self.slices {
            for local_r in 0..slice.rows {
                let range = local_r * slice.width..(local_r + 1) * slice.width;
                y[slice.first_row + local_r] = slice.indices[range.clone()]
                    .iter()
                    .zip(&slice.values[range])
                    .map(|(&c, &v)| if c == PAD { T::ZERO } else { v * x[c] })
                    .sum();
            }
        }
        Ok(y)
    }

    fn kind(&self) -> FormatKind {
        FormatKind::Sell
    }
}

impl<T: Scalar> From<&Coo<T>> for Sell<T> {
    /// Converts with [`Sell::DEFAULT_CHUNK`] rows per slice.
    fn from(coo: &Coo<T>) -> Self {
        Sell::from_coo(coo, Sell::<T>::DEFAULT_CHUNK).expect("positive chunk")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ell;

    fn ragged() -> Coo<f32> {
        // Row 0 has 4 entries, rows 1..7 have one each: ELL pads heavily,
        // SELL with chunk 4 pads only the first slice.
        let mut coo = Coo::new(8, 8);
        for c in 0..4 {
            coo.push(0, c, (c + 1) as f32).unwrap();
        }
        for r in 1..8 {
            coo.push(r, r, 1.0).unwrap();
        }
        coo
    }

    #[test]
    fn slices_have_local_widths() {
        let m = Sell::from_coo(&ragged(), 4).unwrap();
        assert_eq!(m.slices().len(), 2);
        assert_eq!(m.slices()[0].width, 4);
        assert_eq!(m.slices()[1].width, 1);
    }

    #[test]
    fn sell_pads_less_than_ell() {
        let coo = ragged();
        let sell = Sell::from_coo(&coo, 4).unwrap();
        let ell = Ell::from(&coo);
        assert!(sell.padding() < ell.padding());
        assert_eq!(sell.nnz(), ell.nnz());
    }

    #[test]
    fn round_trip_and_get() {
        let coo = ragged();
        let m = Sell::from_coo(&coo, 3).unwrap();
        assert!(coo.to_dense().structurally_eq(&m));
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(5, 5), 1.0);
        assert_eq!(m.get(5, 4), 0.0);
    }

    #[test]
    fn spmv_matches_dense() {
        let coo = ragged();
        for chunk in [1, 2, 4, 8, 16] {
            let m = Sell::from_coo(&coo, chunk).unwrap();
            let x: Vec<f32> = (0..8).map(|i| (i + 1) as f32).collect();
            assert_eq!(
                m.spmv(&x).unwrap(),
                coo.to_dense().spmv(&x).unwrap(),
                "chunk {chunk}"
            );
        }
    }

    #[test]
    fn chunk_one_equals_per_row_widths() {
        let m = Sell::from_coo(&ragged(), 1).unwrap();
        assert_eq!(m.padding(), 0);
    }

    #[test]
    fn zero_chunk_is_rejected() {
        assert!(matches!(
            Sell::from_coo(&ragged(), 0),
            Err(SparseError::InvalidBlockSize { .. })
        ));
    }

    #[test]
    fn last_slice_may_be_short() {
        let m = Sell::from_coo(&ragged(), 5).unwrap();
        assert_eq!(m.slices().len(), 2);
        assert_eq!(m.slices()[1].rows, 3);
    }
}
