//! Linear-algebra operations shared by the example applications
//! (element-wise combination, scaling, sparse matrix–matrix product, vector
//! helpers for the iterative solvers).

use crate::{Coo, Csr, Matrix, Scalar, SparseError, Triplet};

/// `A + B` as a new COO matrix.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] when shapes differ.
pub fn add<T: Scalar, A: Matrix<T>, B: Matrix<T>>(a: &A, b: &B) -> Result<Coo<T>, SparseError> {
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return Err(SparseError::ShapeMismatch {
            expected: (a.nrows(), a.ncols()),
            found: (b.nrows(), b.ncols()),
        });
    }
    let mut out = Coo::with_capacity(a.nrows(), a.ncols(), a.nnz() + b.nnz());
    out.extend(a.triplets());
    out.extend(b.triplets());
    out.compress();
    Ok(out)
}

/// `A - B` as a new COO matrix.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] when shapes differ.
pub fn sub<T: Scalar, A: Matrix<T>, B: Matrix<T>>(a: &A, b: &B) -> Result<Coo<T>, SparseError> {
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return Err(SparseError::ShapeMismatch {
            expected: (a.nrows(), a.ncols()),
            found: (b.nrows(), b.ncols()),
        });
    }
    let mut out = Coo::with_capacity(a.nrows(), a.ncols(), a.nnz() + b.nnz());
    out.extend(a.triplets());
    out.extend(
        b.triplets()
            .into_iter()
            .map(|t| Triplet { val: -t.val, ..t }),
    );
    out.compress();
    Ok(out)
}

/// `k · A` as a new COO matrix (entries that scale to exact zero are
/// dropped).
pub fn scale<T: Scalar, A: Matrix<T>>(a: &A, k: T) -> Coo<T> {
    let mut out = Coo::with_capacity(a.nrows(), a.ncols(), a.nnz());
    out.extend(a.triplets().into_iter().map(|t| Triplet {
        val: t.val * k,
        ..t
    }));
    out
}

/// Sparse matrix–matrix product `A · B` in CSR (the kernel behind the
/// machine-learning workloads of §3.3: "convolving a 3D input with a given
/// number of filters can be represented as an equivalent matrix-matrix
/// multiplication").
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] when `a.ncols() != b.nrows()`.
pub fn spmm<T: Scalar>(a: &Csr<T>, b: &Csr<T>) -> Result<Csr<T>, SparseError> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::ShapeMismatch {
            expected: (a.ncols(), b.nrows()),
            found: (b.nrows(), b.ncols()),
        });
    }
    // Gustavson's row-by-row algorithm with a dense accumulator per row.
    let mut out = Coo::new(a.nrows(), b.ncols());
    let mut acc = vec![T::ZERO; b.ncols()];
    let mut touched: Vec<usize> = Vec::new();
    for r in 0..a.nrows() {
        for (k, av) in a.row_entries(r) {
            for (c, bv) in b.row_entries(k) {
                if acc[c].is_zero() && !(av * bv).is_zero() {
                    touched.push(c);
                }
                acc[c] += av * bv;
            }
        }
        touched.sort_unstable();
        for &c in &touched {
            out.push(r, c, acc[c]).expect("in bounds");
            acc[c] = T::ZERO;
        }
        touched.clear();
    }
    Ok(Csr::from(&out))
}

/// Kronecker product `A ⊗ B` as a new COO matrix — the construction behind
/// the paper's kron_g500 workload (a Kronecker power of a small seed
/// graph).
pub fn kron<T: Scalar, A: Matrix<T>, B: Matrix<T>>(a: &A, b: &B) -> Coo<T> {
    let (bn, bm) = (b.nrows(), b.ncols());
    let mut out = Coo::with_capacity(a.nrows() * bn, a.ncols() * bm, a.nnz() * b.nnz());
    let b_triplets = b.triplets();
    for ta in a.triplets() {
        for tb in &b_triplets {
            out.push(ta.row * bn + tb.row, ta.col * bm + tb.col, ta.val * tb.val)
                .expect("in bounds by construction");
        }
    }
    out
}

/// The main diagonal of a matrix as a dense vector of length
/// `min(nrows, ncols)` — handy for Jacobi-style preconditioning.
pub fn diagonal<T: Scalar, A: Matrix<T>>(a: &A) -> Vec<T> {
    (0..a.nrows().min(a.ncols())).map(|i| a.get(i, i)).collect()
}

/// The submatrix covering `rows` × `cols` (half-open ranges) as a new COO
/// matrix with rebased coordinates.
///
/// # Errors
///
/// Returns [`SparseError::IndexOutOfBounds`] when a range end exceeds the
/// matrix shape.
pub fn submatrix<T: Scalar, A: Matrix<T>>(
    a: &A,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> Result<Coo<T>, SparseError> {
    if rows.end > a.nrows() || cols.end > a.ncols() {
        return Err(SparseError::IndexOutOfBounds {
            index: (rows.end.saturating_sub(1), cols.end.saturating_sub(1)),
            shape: (a.nrows(), a.ncols()),
        });
    }
    let mut out = Coo::new(rows.len(), cols.len());
    for t in a.triplets() {
        if rows.contains(&t.row) && cols.contains(&t.col) {
            out.push(t.row - rows.start, t.col - cols.start, t.val)?;
        }
    }
    Ok(out)
}

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics when the lengths differ.
pub fn dot<T: Scalar>(a: &[T], b: &[T]) -> T {
    assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// `y ← y + k·x` (axpy).
///
/// # Panics
///
/// Panics when the lengths differ.
pub fn axpy<T: Scalar>(k: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy operands must have equal length");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += k * xi;
    }
}

/// Euclidean norm of a vector, computed in `f64`.
pub fn norm2<T: Scalar>(v: &[T]) -> f64 {
    v.iter()
        .map(|&x| x.to_f64() * x.to_f64())
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Coo<f32> {
        let mut m = Coo::new(2, 2);
        m.push(0, 0, 1.0).unwrap();
        m.push(1, 1, 2.0).unwrap();
        m
    }

    fn b() -> Coo<f32> {
        let mut m = Coo::new(2, 2);
        m.push(0, 0, 3.0).unwrap();
        m.push(0, 1, 4.0).unwrap();
        m
    }

    #[test]
    fn add_and_sub() {
        let s = add(&a(), &b()).unwrap();
        assert_eq!(s.get(0, 0), 4.0);
        assert_eq!(s.get(0, 1), 4.0);
        assert_eq!(s.get(1, 1), 2.0);

        let d = sub(&a(), &b()).unwrap();
        assert_eq!(d.get(0, 0), -2.0);
        assert_eq!(d.get(0, 1), -4.0);
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let wide = Coo::<f32>::new(2, 3);
        assert!(add(&a(), &wide).is_err());
        assert!(sub(&a(), &wide).is_err());
    }

    #[test]
    fn sub_of_self_is_empty() {
        let d = sub(&a(), &a()).unwrap();
        assert_eq!(d.nnz(), 0);
    }

    #[test]
    fn scale_drops_zeroed_entries() {
        let z = scale(&a(), 0.0);
        assert_eq!(z.nnz(), 0);
        let doubled = scale(&a(), 2.0);
        assert_eq!(doubled.get(1, 1), 4.0);
    }

    #[test]
    fn spmm_matches_dense_product() {
        let ac = Csr::from(&a());
        let bc = Csr::from(&b());
        let p = spmm(&ac, &bc).unwrap();
        // Dense check.
        let ad = a().to_dense();
        let bd = b().to_dense();
        for r in 0..2 {
            for c in 0..2 {
                let want: f32 = (0..2).map(|k| ad[(r, k)] * bd[(k, c)]).sum();
                assert_eq!(p.get(r, c), want, "({r},{c})");
            }
        }
    }

    #[test]
    fn spmm_identity_is_noop() {
        let id = Csr::from(&crate::Dense::<f32>::identity(2).to_coo());
        let ac = Csr::from(&a());
        assert_eq!(spmm(&ac, &id).unwrap(), ac);
        assert_eq!(spmm(&id, &ac).unwrap(), ac);
    }

    #[test]
    fn spmm_rejects_inner_dim_mismatch() {
        let ac = Csr::from(&a());
        let wide = Csr::from(&Coo::<f32>::new(3, 2));
        assert!(spmm(&ac, &wide).is_err());
    }

    #[test]
    fn kron_matches_dense_definition() {
        let x = a(); // diag(1, 2)
        let y = b(); // [[3, 4], [0, 0]]
        let k = kron(&x, &y);
        assert_eq!((k.nrows(), k.ncols()), (4, 4));
        let kd = k.to_dense();
        let (xd, yd) = (x.to_dense(), y.to_dense());
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(
                    kd[(r, c)],
                    xd[(r / 2, c / 2)] * yd[(r % 2, c % 2)],
                    "({r},{c})"
                );
            }
        }
        assert_eq!(k.nnz(), x.nnz() * y.nnz());
    }

    #[test]
    fn kron_power_grows_like_kron_g500() {
        // Squaring a 2x2 seed doubles the log-size, exactly how kron_g500
        // builds its scale-21 graph.
        let seed = b();
        let squared = kron(&seed, &seed);
        assert_eq!(squared.nrows(), 4);
        assert_eq!(squared.nnz(), seed.nnz() * seed.nnz());
        let cubed = kron(&squared, &seed);
        assert_eq!(cubed.nrows(), 8);
        assert_eq!(cubed.nnz(), seed.nnz().pow(3));
    }

    #[test]
    fn diagonal_extraction() {
        let d = diagonal(&a());
        assert_eq!(d, vec![1.0, 2.0]);
        // Rectangular: diagonal length = min dimension.
        let wide = Coo::<f32>::new(2, 5);
        assert_eq!(diagonal(&wide).len(), 2);
    }

    #[test]
    fn submatrix_rebases_coordinates() {
        let mut m = Coo::<f32>::new(4, 4);
        m.push(1, 1, 5.0).unwrap();
        m.push(2, 3, 7.0).unwrap();
        m.push(0, 0, 9.0).unwrap();
        let sub = submatrix(&m, 1..3, 1..4).unwrap();
        assert_eq!((sub.nrows(), sub.ncols()), (2, 3));
        assert_eq!(sub.get(0, 0), 5.0);
        assert_eq!(sub.get(1, 2), 7.0);
        assert_eq!(sub.nnz(), 2);
    }

    #[test]
    fn submatrix_validates_ranges() {
        let m = Coo::<f32>::new(3, 3);
        assert!(submatrix(&m, 0..4, 0..2).is_err());
        assert!(submatrix(&m, 0..2, 0..5).is_err());
        assert!(submatrix(&m, 0..0, 0..0).is_ok());
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0f32, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        let mut y = vec![1.0f32, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        assert!((norm2(&[3.0f32, 4.0]) - 5.0).abs() < 1e-12);
    }
}
