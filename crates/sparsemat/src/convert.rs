//! Format-erased matrices and the conversion graph.

use crate::{
    Bcsc, Bcsr, Coo, Csc, Csr, Dense, Dia, Dok, Ell, FormatKind, Jds, Lil, Matrix, Scalar, Sell,
    SparseError, Triplet,
};

/// A matrix in any of the supported formats, selected at run time.
///
/// The characterization harness sweeps `format × workload × partition size`;
/// `AnyMatrix` lets it hold each encoded partition uniformly while keeping
/// the concrete types available for format-specific statistics.
///
/// ```
/// use sparsemat::{AnyMatrix, Coo, FormatKind, Matrix};
/// # fn main() -> Result<(), sparsemat::SparseError> {
/// let mut coo = Coo::<f32>::new(4, 4);
/// coo.push(1, 2, 3.0)?;
/// let m = AnyMatrix::encode(&coo, FormatKind::Ell);
/// assert_eq!(m.kind(), FormatKind::Ell);
/// assert_eq!(m.get(1, 2), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub enum AnyMatrix<T> {
    Dense(Dense<T>),
    Csr(Csr<T>),
    Csc(Csc<T>),
    Bcsr(Bcsr<T>),
    Bcsc(Bcsc<T>),
    Coo(Coo<T>),
    Dok(Dok<T>),
    Lil(Lil<T>),
    Ell(Ell<T>),
    Sell(Sell<T>),
    Jds(Jds<T>),
    Dia(Dia<T>),
}

macro_rules! dispatch {
    ($self:expr, $m:ident => $body:expr) => {
        match $self {
            AnyMatrix::Dense($m) => $body,
            AnyMatrix::Csr($m) => $body,
            AnyMatrix::Csc($m) => $body,
            AnyMatrix::Bcsr($m) => $body,
            AnyMatrix::Bcsc($m) => $body,
            AnyMatrix::Coo($m) => $body,
            AnyMatrix::Dok($m) => $body,
            AnyMatrix::Lil($m) => $body,
            AnyMatrix::Ell($m) => $body,
            AnyMatrix::Sell($m) => $body,
            AnyMatrix::Jds($m) => $body,
            AnyMatrix::Dia($m) => $body,
        }
    };
}

impl<T: Scalar> AnyMatrix<T> {
    /// Encodes a COO matrix into the requested format with the paper's
    /// defaults (4×4 BCSR blocks, natural ELL width, column-oriented LIL,
    /// [`Sell::DEFAULT_CHUNK`] slice height).
    pub fn encode(coo: &Coo<T>, kind: FormatKind) -> Self {
        match kind {
            FormatKind::Dense => AnyMatrix::Dense(Dense::from(coo)),
            FormatKind::Csr => AnyMatrix::Csr(Csr::from(coo)),
            FormatKind::Csc => AnyMatrix::Csc(Csc::from(coo)),
            FormatKind::Bcsr => AnyMatrix::Bcsr(Bcsr::from(coo)),
            FormatKind::Bcsc => AnyMatrix::Bcsc(Bcsc::from(coo)),
            FormatKind::Coo => AnyMatrix::Coo(coo.clone()),
            FormatKind::Dok => AnyMatrix::Dok(Dok::from(coo)),
            FormatKind::Lil => AnyMatrix::Lil(Lil::from(coo)),
            FormatKind::Ell => AnyMatrix::Ell(Ell::from(coo)),
            FormatKind::Sell => AnyMatrix::Sell(Sell::from(coo)),
            FormatKind::Jds => AnyMatrix::Jds(Jds::from(coo)),
            FormatKind::Dia => AnyMatrix::Dia(Dia::from(coo)),
        }
    }

    /// Re-encodes this matrix into another format (through COO).
    pub fn convert(&self, kind: FormatKind) -> Self {
        AnyMatrix::encode(&self.to_coo(), kind)
    }
}

impl<T: Scalar> Matrix<T> for AnyMatrix<T> {
    fn nrows(&self) -> usize {
        dispatch!(self, m => m.nrows())
    }

    fn ncols(&self) -> usize {
        dispatch!(self, m => m.ncols())
    }

    fn nnz(&self) -> usize {
        dispatch!(self, m => m.nnz())
    }

    fn get(&self, row: usize, col: usize) -> T {
        dispatch!(self, m => m.get(row, col))
    }

    fn triplets(&self) -> Vec<Triplet<T>> {
        dispatch!(self, m => m.triplets())
    }

    fn spmv(&self, x: &[T]) -> Result<Vec<T>, SparseError> {
        dispatch!(self, m => m.spmv(x))
    }

    fn kind(&self) -> FormatKind {
        dispatch!(self, m => m.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo<f32> {
        let mut coo = Coo::new(6, 6);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 4, 2.0).unwrap();
        coo.push(3, 3, -3.0).unwrap();
        coo.push(5, 1, 4.0).unwrap();
        coo.push(5, 5, 5.0).unwrap();
        coo
    }

    #[test]
    fn every_format_encodes_and_round_trips() {
        let coo = sample();
        let dense = coo.to_dense();
        for kind in FormatKind::ALL {
            let m = AnyMatrix::encode(&coo, kind);
            assert_eq!(m.kind(), kind, "{kind}");
            assert_eq!(m.nnz(), coo.nnz(), "{kind}");
            assert!(dense.structurally_eq(&m), "{kind}");
        }
    }

    #[test]
    fn every_format_spmv_matches_dense() {
        let coo = sample();
        let x: Vec<f32> = (0..6).map(|i| (i as f32) - 2.0).collect();
        let expect = coo.to_dense().spmv(&x).unwrap();
        for kind in FormatKind::ALL {
            let m = AnyMatrix::encode(&coo, kind);
            assert_eq!(m.spmv(&x).unwrap(), expect, "{kind}");
        }
    }

    #[test]
    fn conversion_graph_commutes_through_any_pair() {
        let coo = sample();
        let dense = coo.to_dense();
        for from in FormatKind::ALL {
            let a = AnyMatrix::encode(&coo, from);
            for to in FormatKind::ALL {
                let b = a.convert(to);
                assert!(dense.structurally_eq(&b), "{from} -> {to}");
            }
        }
    }

    #[test]
    fn format_kind_parses_labels() {
        for kind in FormatKind::ALL {
            let parsed: FormatKind = kind.label().parse().unwrap();
            assert_eq!(parsed, kind);
            let lower: FormatKind = kind.label().to_lowercase().parse().unwrap();
            assert_eq!(lower, kind);
        }
        assert!("NOPE".parse::<FormatKind>().is_err());
    }

    #[test]
    fn characterized_list_has_dense_first_and_seven_formats() {
        assert_eq!(FormatKind::CHARACTERIZED[0], FormatKind::Dense);
        assert_eq!(FormatKind::CHARACTERIZED.len(), 8);
    }
}
