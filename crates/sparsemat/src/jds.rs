//! Jagged diagonal storage (JDS) — the sorted-ELL variant the paper lists
//! among the popular ELL derivatives.

use crate::{check_spmv_operand, Coo, FormatKind, Matrix, Scalar, SparseError, Triplet};

/// Jagged diagonal storage.
///
/// §2 of the paper: "The JDS format sorts the rows in ELL from longest to
/// shortest (for vector machines)." After sorting, the entries are stored as
/// *jagged diagonals*: the first entry of every row, then the second entry
/// of every row that has one, and so on. Each jagged diagonal is dense, so a
/// vector unit can process one diagonal per sweep with no padding at all.
///
/// Stored arrays:
/// * `perm` — the row permutation (by descending population),
/// * `jd_ptr` — start of each jagged diagonal in `values`/`indices`,
/// * `indices`/`values` — the jagged diagonals back to back.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Jds<T> {
    nrows: usize,
    ncols: usize,
    perm: Vec<usize>,
    jd_ptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> Jds<T> {
    /// Builds a JDS matrix from COO.
    pub fn from_coo(coo: &Coo<T>) -> Self {
        let csr = crate::Csr::from(coo);
        let nrows = coo.nrows();

        // Stable sort rows by descending population so equal-length rows
        // keep their natural order (makes the layout deterministic).
        let mut perm: Vec<usize> = (0..nrows).collect();
        perm.sort_by_key(|&r| std::cmp::Reverse(csr.row_nnz(r)));

        let max_width = csr.max_row_nnz();
        let mut jd_ptr = Vec::with_capacity(max_width + 1);
        let mut indices = Vec::with_capacity(csr.nnz());
        let mut values = Vec::with_capacity(csr.nnz());
        jd_ptr.push(0);
        for d in 0..max_width {
            for &r in &perm {
                if csr.row_nnz(r) > d {
                    let (c, v) = csr.row_entries(r).nth(d).expect("slot exists");
                    indices.push(c);
                    values.push(v);
                } else {
                    // Rows are sorted by descending length, so no later row
                    // in the permutation can hold this diagonal either.
                    break;
                }
            }
            jd_ptr.push(indices.len());
        }
        Jds {
            nrows,
            ncols: coo.ncols(),
            perm,
            jd_ptr,
            indices,
            values,
        }
    }

    /// The row permutation (original row index per sorted position).
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Number of jagged diagonals (= longest row population).
    pub fn num_jagged_diagonals(&self) -> usize {
        self.jd_ptr.len() - 1
    }

    /// Length of jagged diagonal `d` (how many rows reach slot `d`).
    ///
    /// # Panics
    ///
    /// Panics if `d >= num_jagged_diagonals()`.
    pub fn jd_len(&self, d: usize) -> usize {
        assert!(
            d < self.num_jagged_diagonals(),
            "diagonal {d} out of bounds"
        );
        self.jd_ptr[d + 1] - self.jd_ptr[d]
    }
}

impl<T: Scalar> Matrix<T> for Jds<T> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.values.len()
    }

    fn get(&self, row: usize, col: usize) -> T {
        assert!(
            row < self.nrows && col < self.ncols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        let pos = self
            .perm
            .iter()
            .position(|&r| r == row)
            .expect("permutation covers all rows");
        for d in 0..self.num_jagged_diagonals() {
            if pos >= self.jd_len(d) {
                break;
            }
            let k = self.jd_ptr[d] + pos;
            if self.indices[k] == col {
                return self.values[k];
            }
        }
        T::ZERO
    }

    fn triplets(&self) -> Vec<Triplet<T>> {
        let mut out = Vec::with_capacity(self.nnz());
        for d in 0..self.num_jagged_diagonals() {
            for pos in 0..self.jd_len(d) {
                let k = self.jd_ptr[d] + pos;
                out.push(Triplet::new(
                    self.perm[pos],
                    self.indices[k],
                    self.values[k],
                ));
            }
        }
        crate::triplet::sort_row_major(&mut out);
        out
    }

    fn spmv(&self, x: &[T]) -> Result<Vec<T>, SparseError> {
        check_spmv_operand(self, x)?;
        // One dense sweep per jagged diagonal — the vector-machine schedule.
        let mut y = vec![T::ZERO; self.nrows];
        for d in 0..self.num_jagged_diagonals() {
            for pos in 0..self.jd_len(d) {
                let k = self.jd_ptr[d] + pos;
                y[self.perm[pos]] += self.values[k] * x[self.indices[k]];
            }
        }
        Ok(y)
    }

    fn kind(&self) -> FormatKind {
        FormatKind::Jds
    }
}

impl<T: Scalar> From<&Coo<T>> for Jds<T> {
    fn from(coo: &Coo<T>) -> Self {
        Jds::from_coo(coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ragged() -> Coo<f32> {
        // Row populations: r0=1, r1=3, r2=0, r3=2.
        let mut coo = Coo::new(4, 4);
        coo.push(0, 3, 1.0).unwrap();
        coo.push(1, 0, 2.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        coo.push(1, 3, 4.0).unwrap();
        coo.push(3, 0, 5.0).unwrap();
        coo.push(3, 2, 6.0).unwrap();
        coo
    }

    #[test]
    fn permutation_sorts_by_descending_population() {
        let m = Jds::from_coo(&ragged());
        assert_eq!(m.permutation(), &[1, 3, 0, 2]);
    }

    #[test]
    fn jagged_diagonal_lengths_decrease() {
        let m = Jds::from_coo(&ragged());
        assert_eq!(m.num_jagged_diagonals(), 3);
        assert_eq!(m.jd_len(0), 3); // rows 1, 3, 0 have a first entry
        assert_eq!(m.jd_len(1), 2); // rows 1, 3 have a second
        assert_eq!(m.jd_len(2), 1); // only row 1 has a third
    }

    #[test]
    fn round_trip_and_get() {
        let coo = ragged();
        let m = Jds::from_coo(&coo);
        assert!(coo.to_dense().structurally_eq(&m));
        assert_eq!(m.get(1, 1), 3.0);
        assert_eq!(m.get(2, 2), 0.0);
    }

    #[test]
    fn spmv_matches_dense() {
        let coo = ragged();
        let m = Jds::from_coo(&coo);
        let x = [1.0, 10.0, 100.0, 1000.0];
        assert_eq!(m.spmv(&x).unwrap(), coo.to_dense().spmv(&x).unwrap());
    }

    #[test]
    fn nnz_equals_source() {
        let coo = ragged();
        assert_eq!(Jds::from_coo(&coo).nnz(), coo.nnz());
    }

    #[test]
    fn empty_matrix() {
        let coo = Coo::<f32>::new(3, 3);
        let m = Jds::from_coo(&coo);
        assert_eq!(m.num_jagged_diagonals(), 0);
        assert_eq!(m.spmv(&[0.0; 3]).unwrap(), vec![0.0; 3]);
    }
}
