//! The `(row, col, value)` tuple all formats can decompose into.

use crate::Scalar;

/// One stored matrix entry as a coordinate tuple.
///
/// This is the lingua franca of the conversion graph: every format can emit
/// its entries as triplets ([`Matrix::triplets`](crate::Matrix::triplets))
/// and [`Coo`](crate::Coo) can absorb them.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Triplet<T> {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Stored value.
    pub val: T,
}

impl<T: Scalar> Triplet<T> {
    /// Creates a triplet.
    ///
    /// ```
    /// use sparsemat::Triplet;
    /// let t = Triplet::new(2, 5, 1.5f32);
    /// assert_eq!((t.row, t.col, t.val), (2, 5, 1.5));
    /// ```
    pub fn new(row: usize, col: usize, val: T) -> Self {
        Triplet { row, col, val }
    }

    /// The triplet with row and column swapped (transpose image).
    pub fn transposed(self) -> Self {
        Triplet {
            row: self.col,
            col: self.row,
            val: self.val,
        }
    }
}

impl<T> From<(usize, usize, T)> for Triplet<T> {
    fn from((row, col, val): (usize, usize, T)) -> Self {
        Triplet { row, col, val }
    }
}

/// Sorts triplets into row-major order (row, then column) — the canonical
/// order used when comparing entry sets across formats.
pub fn sort_row_major<T>(triplets: &mut [Triplet<T>]) {
    triplets.sort_by_key(|t| (t.row, t.col));
}

/// Sorts triplets into column-major order (column, then row).
pub fn sort_col_major<T>(triplets: &mut [Triplet<T>]) {
    triplets.sort_by_key(|t| (t.col, t.row));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_swaps_coordinates() {
        let t = Triplet::new(1, 9, 4.0f32).transposed();
        assert_eq!((t.row, t.col), (9, 1));
    }

    #[test]
    fn from_tuple() {
        let t: Triplet<f32> = (3, 4, 5.0).into();
        assert_eq!(t, Triplet::new(3, 4, 5.0));
    }

    #[test]
    fn sorting_orders() {
        let mut ts = vec![
            Triplet::new(1, 0, 1.0f32),
            Triplet::new(0, 1, 2.0),
            Triplet::new(0, 0, 3.0),
        ];
        sort_row_major(&mut ts);
        assert_eq!(
            ts.iter().map(|t| (t.row, t.col)).collect::<Vec<_>>(),
            vec![(0, 0), (0, 1), (1, 0)]
        );
        sort_col_major(&mut ts);
        assert_eq!(
            ts.iter().map(|t| (t.row, t.col)).collect::<Vec<_>>(),
            vec![(0, 0), (1, 0), (0, 1)]
        );
    }
}
