//! Numeric scalar abstraction used by every matrix format.

use std::fmt::Debug;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Element type usable inside the sparse formats and kernels.
///
/// The trait is sealed to the two IEEE-754 widths the Copernicus platform
/// models (the paper streams 4-byte values; `f64` is provided for users who
/// need double precision in the software kernels). Sealing keeps the numeric
/// contract — exact additive identity, commutative `+` on integral values —
/// under this crate's control.
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + PartialOrd
    + Default
    + Add<Output = Self>
    + AddAssign
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + Sum
    + private::Sealed
    + Send
    + Sync
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;

    /// Size of one stored element in bytes on the streaming interface
    /// (the Copernicus platform transfers 4-byte values and 4-byte indices).
    const STREAM_BYTES: usize;

    /// `true` when the value equals the additive identity exactly.
    ///
    /// Formats use this to decide whether an entry is worth storing; it is a
    /// bit-exact comparison, not an epsilon test.
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Lossy conversion from `f64`, used by generators and test fixtures.
    fn from_f64(v: f64) -> Self;

    /// Lossy conversion to `f64`, used by metrics and reductions.
    fn to_f64(self) -> f64;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const STREAM_BYTES: usize = 4;

    fn from_f64(v: f64) -> Self {
        v as f32
    }

    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const STREAM_BYTES: usize = 8;

    fn from_f64(v: f64) -> Self {
        v
    }

    fn to_f64(self) -> f64 {
        self
    }
}

mod private {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(f32::ZERO.is_zero());
        assert!(!f32::ONE.is_zero());
        assert!(f64::ZERO.is_zero());
        assert_eq!(f32::ONE + f32::ONE, 2.0);
    }

    #[test]
    fn f64_round_trip() {
        assert_eq!(f64::from_f64(3.25).to_f64(), 3.25);
        assert_eq!(f32::from_f64(3.25), 3.25f32);
    }

    #[test]
    fn negative_zero_counts_as_zero() {
        // IEEE-754 -0.0 == 0.0, so formats will drop it like any other zero.
        assert!((-0.0f32).is_zero());
    }

    #[test]
    fn stream_widths_match_paper() {
        // The paper's bandwidth-utilization figures assume equal-width values
        // and indices (COO utilization is 1/3); f32 matches the 4-byte index.
        assert_eq!(f32::STREAM_BYTES, 4);
        assert_eq!(f64::STREAM_BYTES, 8);
    }
}
