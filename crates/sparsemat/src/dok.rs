//! Dictionary of keys (DOK) format.

use crate::{check_spmv_operand, Coo, FormatKind, Matrix, Scalar, SparseError, Triplet};
use std::collections::HashMap;

/// Dictionary-of-keys sparse matrix: a hash map from `(row, col)` to value.
///
/// §2 of the paper: "The DOK format is similar to the COO format except that
/// it stores coordinate-data information as key-value pairs. DOK uses hash
/// tables to store a value with the key of (row index, column index)."
/// The paper's hardware treatment of DOK is identical to COO (§5.2: "the
/// same procedure is also applicable to DOK"), so the characterization maps
/// DOK onto the COO decompressor.
///
/// DOK shines at incremental construction and point updates; use
/// [`Matrix::to_coo`] to move to a compute-friendly format.
#[derive(Debug, Clone, Default)]
pub struct Dok<T> {
    nrows: usize,
    ncols: usize,
    map: HashMap<(usize, usize), T>,
}

impl<T: Scalar> Dok<T> {
    /// Creates an empty DOK matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Dok {
            nrows,
            ncols,
            map: HashMap::new(),
        }
    }

    /// Sets the value at `(row, col)`, returning the previous value if one
    /// was stored. Setting an exact zero removes the entry.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if the coordinate lies
    /// outside the shape.
    pub fn set(&mut self, row: usize, col: usize, val: T) -> Result<Option<T>, SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.nrows, self.ncols),
            });
        }
        if val.is_zero() {
            Ok(self.map.remove(&(row, col)))
        } else {
            Ok(self.map.insert((row, col), val))
        }
    }

    /// Adds `val` to the entry at `(row, col)` (inserting it if absent,
    /// removing it if the sum cancels to zero).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if the coordinate lies
    /// outside the shape.
    pub fn add(&mut self, row: usize, col: usize, val: T) -> Result<(), SparseError> {
        let current = if row < self.nrows && col < self.ncols {
            self.map.get(&(row, col)).copied().unwrap_or(T::ZERO)
        } else {
            T::ZERO
        };
        self.set(row, col, current + val).map(|_| ())
    }

    /// Removes and returns the entry at `(row, col)`.
    pub fn remove(&mut self, row: usize, col: usize) -> Option<T> {
        self.map.remove(&(row, col))
    }

    /// Whether an entry is stored at `(row, col)`.
    pub fn contains_key(&self, row: usize, col: usize) -> bool {
        self.map.contains_key(&(row, col))
    }

    /// Iterates over stored entries in arbitrary (hash) order.
    pub fn iter(&self) -> impl Iterator<Item = Triplet<T>> + '_ {
        self.map
            .iter()
            .map(|(&(row, col), &val)| Triplet { row, col, val })
    }
}

impl<T: Scalar> Matrix<T> for Dok<T> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.map.len()
    }

    fn get(&self, row: usize, col: usize) -> T {
        assert!(
            row < self.nrows && col < self.ncols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        self.map.get(&(row, col)).copied().unwrap_or(T::ZERO)
    }

    fn triplets(&self) -> Vec<Triplet<T>> {
        let mut ts: Vec<Triplet<T>> = self.iter().collect();
        crate::triplet::sort_row_major(&mut ts);
        ts
    }

    fn spmv(&self, x: &[T]) -> Result<Vec<T>, SparseError> {
        check_spmv_operand(self, x)?;
        let mut y = vec![T::ZERO; self.nrows];
        for (&(r, c), &v) in &self.map {
            y[r] += v * x[c];
        }
        Ok(y)
    }

    fn kind(&self) -> FormatKind {
        FormatKind::Dok
    }
}

impl<T: Scalar> From<&Coo<T>> for Dok<T> {
    fn from(coo: &Coo<T>) -> Self {
        let mut dok = Dok::new(coo.nrows(), coo.ncols());
        for t in coo.iter() {
            dok.add(t.row, t.col, t.val).expect("COO entry in bounds");
        }
        dok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut m = Dok::<f32>::new(3, 3);
        assert_eq!(m.set(1, 1, 5.0).unwrap(), None);
        assert_eq!(m.get(1, 1), 5.0);
        assert_eq!(m.set(1, 1, 6.0).unwrap(), Some(5.0));
        assert_eq!(m.remove(1, 1), Some(6.0));
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn set_zero_removes() {
        let mut m = Dok::<f32>::new(2, 2);
        m.set(0, 0, 3.0).unwrap();
        m.set(0, 0, 0.0).unwrap();
        assert!(!m.contains_key(0, 0));
    }

    #[test]
    fn add_accumulates_and_cancels() {
        let mut m = Dok::<f32>::new(2, 2);
        m.add(0, 1, 2.0).unwrap();
        m.add(0, 1, 3.0).unwrap();
        assert_eq!(m.get(0, 1), 5.0);
        m.add(0, 1, -5.0).unwrap();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = Dok::<f32>::new(2, 2);
        assert!(m.set(2, 0, 1.0).is_err());
        assert!(m.add(0, 7, 1.0).is_err());
    }

    #[test]
    fn triplets_are_sorted_row_major() {
        let mut m = Dok::<f32>::new(3, 3);
        m.set(2, 0, 1.0).unwrap();
        m.set(0, 2, 2.0).unwrap();
        m.set(0, 0, 3.0).unwrap();
        let ts = m.triplets();
        let coords: Vec<_> = ts.iter().map(|t| (t.row, t.col)).collect();
        assert_eq!(coords, vec![(0, 0), (0, 2), (2, 0)]);
    }

    #[test]
    fn spmv_matches_dense() {
        let mut m = Dok::<f32>::new(3, 4);
        m.set(0, 3, 2.0).unwrap();
        m.set(2, 0, -1.0).unwrap();
        m.set(2, 2, 4.0).unwrap();
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.spmv(&x).unwrap(), m.to_dense().spmv(&x).unwrap());
    }

    #[test]
    fn coo_round_trip() {
        let mut m = Dok::<f32>::new(3, 3);
        m.set(1, 2, 9.0).unwrap();
        m.set(2, 2, 1.0).unwrap();
        let back = Dok::from(&m.to_coo());
        assert!(m.to_dense().structurally_eq(&back));
    }
}
