//! Block compressed sparse row (BCSR) format.

use crate::{check_spmv_operand, Coo, FormatKind, Matrix, Scalar, SparseError, Triplet};

/// Block compressed sparse row matrix with square `b×b` blocks.
///
/// §2 of the paper: BCSR "is similar to CSR, but arrays are stored based on
/// the same-shaped blocks (sub-matrices) rather than on the original matrix",
/// with `offsets` counting non-zero blocks per block-row and `indices`
/// "indicating the index of the first column of non-zero blocks". The paper
/// uses 4×4 blocks throughout ([`Bcsr::PAPER_BLOCK_SIZE`]).
///
/// Copernicus's hardware findings (§5.2, Listing 2): the block shape lets the
/// value and index arrays be partitioned across BRAM blocks and the inner
/// copy loop fully unrolled, at the cost of (i) transferring the zero
/// elements inside non-zero blocks and (ii) running dot-products for every
/// row of a non-zero block-row whether or not that row holds data.
///
/// The matrix shape does not need to be a multiple of the block size; edge
/// blocks are zero-padded internally (the padding never counts toward
/// [`Matrix::nnz`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Bcsr<T> {
    nrows: usize,
    ncols: usize,
    block: usize,
    /// Non-zero-block pointers per block-row (`block_rows + 1` entries).
    offsets: Vec<usize>,
    /// First-column index of each stored block, block-row by block-row.
    indices: Vec<usize>,
    /// Flattened row-major `b×b` values of each stored block.
    values: Vec<T>,
    /// Cached count of genuinely non-zero scalars inside the blocks.
    nnz: usize,
}

impl<T: Scalar> Bcsr<T> {
    /// The 4×4 block size the paper uses in all experiments.
    pub const PAPER_BLOCK_SIZE: usize = 4;

    /// Builds a BCSR matrix from a COO matrix with the given block size.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidBlockSize`] when `block == 0`.
    pub fn from_coo(coo: &Coo<T>, block: usize) -> Result<Self, SparseError> {
        if block == 0 {
            return Err(SparseError::InvalidBlockSize {
                size: 0,
                requirement: "block size must be positive",
            });
        }
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        let block_rows = nrows.div_ceil(block);
        let block_cols = ncols.div_ceil(block);

        // Bucket entries into blocks keyed by (block_row, block_col).
        let mut buckets: std::collections::BTreeMap<(usize, usize), Vec<T>> =
            std::collections::BTreeMap::new();
        for t in coo.iter() {
            let key = (t.row / block, t.col / block);
            let slot = buckets
                .entry(key)
                .or_insert_with(|| vec![T::ZERO; block * block]);
            slot[(t.row % block) * block + t.col % block] += t.val;
        }
        // Duplicate COO entries may cancel; drop blocks that became all-zero.
        buckets.retain(|_, v| v.iter().any(|x| !x.is_zero()));

        let mut offsets = vec![0usize; block_rows + 1];
        let mut indices = Vec::with_capacity(buckets.len());
        let mut values = Vec::with_capacity(buckets.len() * block * block);
        let mut nnz = 0usize;
        for (&(br, bc), block_vals) in &buckets {
            debug_assert!(bc < block_cols);
            offsets[br + 1] += 1;
            indices.push(bc * block);
            nnz += block_vals.iter().filter(|v| !v.is_zero()).count();
            values.extend_from_slice(block_vals);
        }
        for i in 0..block_rows {
            offsets[i + 1] += offsets[i];
        }
        Ok(Bcsr {
            nrows,
            ncols,
            block,
            offsets,
            indices,
            values,
            nnz,
        })
    }

    /// Rebuilds this matrix in place from `coo`, reusing every buffer
    /// (including the caller's triplet scratch), producing exactly the
    /// matrix [`Bcsr::from_coo`] builds.
    ///
    /// Duplicate-free, zero-free inputs rebuild without allocating once
    /// capacities are warm — blocks emerge in the same `(block_row,
    /// block_col)` order the BTreeMap bucketing yields; anything else falls
    /// back to the allocating conversion so the per-slot float accumulation
    /// order is untouched.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidBlockSize`] when `block == 0`.
    pub fn assign_from_coo(
        &mut self,
        coo: &Coo<T>,
        block: usize,
        tmp: &mut Vec<Triplet<T>>,
    ) -> Result<(), SparseError> {
        if block == 0 {
            return Err(SparseError::InvalidBlockSize {
                size: 0,
                requirement: "block size must be positive",
            });
        }
        tmp.clear();
        tmp.extend(coo.iter().copied());
        // Unique (row, col) keys within a block keep the unstable sort
        // deterministic; the leading block key yields BTreeMap order.
        tmp.sort_unstable_by_key(|t| (t.row / block, t.col / block, t.row, t.col));
        let clean = tmp
            .windows(2)
            .all(|w| (w[0].row, w[0].col) != (w[1].row, w[1].col))
            && tmp.iter().all(|t| !t.val.is_zero());
        if !clean {
            *self = Bcsr::from_coo(coo, block)?;
            return Ok(());
        }
        self.nrows = coo.nrows();
        self.ncols = coo.ncols();
        self.block = block;
        let block_rows = self.nrows.div_ceil(block);
        self.offsets.clear();
        self.offsets.resize(block_rows + 1, 0);
        self.indices.clear();
        self.values.clear();
        self.nnz = tmp.len();
        let b2 = block * block;
        let mut current = (usize::MAX, usize::MAX);
        for t in tmp.iter() {
            let key = (t.row / block, t.col / block);
            if key != current {
                current = key;
                self.offsets[key.0 + 1] += 1;
                self.indices.push(key.1 * block);
                self.values.resize(self.values.len() + b2, T::ZERO);
            }
            let base = self.values.len() - b2;
            self.values[base + (t.row % block) * block + t.col % block] = t.val;
        }
        for i in 0..block_rows {
            self.offsets[i + 1] += self.offsets[i];
        }
        Ok(())
    }

    /// The block edge length `b`.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Number of block rows (`ceil(nrows / b)`).
    pub fn block_rows(&self) -> usize {
        self.nrows.div_ceil(self.block)
    }

    /// Number of block columns (`ceil(ncols / b)`).
    pub fn block_cols(&self) -> usize {
        self.ncols.div_ceil(self.block)
    }

    /// Total number of stored (non-zero) blocks.
    pub fn num_blocks(&self) -> usize {
        self.indices.len()
    }

    /// Number of stored blocks in block-row `br`.
    ///
    /// # Panics
    ///
    /// Panics if `br >= block_rows()`.
    pub fn block_row_nnz(&self, br: usize) -> usize {
        assert!(br < self.block_rows(), "block row {br} out of bounds");
        self.offsets[br + 1] - self.offsets[br]
    }

    /// Number of block rows containing at least one stored block.
    pub fn nonzero_block_rows(&self) -> usize {
        (0..self.block_rows())
            .filter(|&br| self.block_row_nnz(br) > 0)
            .count()
    }

    /// The block-row pointer array.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// First-column indices of the stored blocks.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Flattened block values, including the explicit zeros inside blocks —
    /// exactly the bytes the hardware would stream.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Total scalars transferred for values (`num_blocks · b²`), i.e. the
    /// stream length including intra-block zero padding.
    pub fn stored_values(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the blocks of block-row `br` as
    /// `(first_col, block_values)` with `block_values.len() == b²`.
    ///
    /// # Panics
    ///
    /// Panics if `br >= block_rows()`.
    pub fn block_row_entries(&self, br: usize) -> impl Iterator<Item = (usize, &[T])> + '_ {
        assert!(br < self.block_rows(), "block row {br} out of bounds");
        let b2 = self.block * self.block;
        (self.offsets[br]..self.offsets[br + 1])
            .map(move |k| (self.indices[k], &self.values[k * b2..(k + 1) * b2]))
    }
}

impl<T: Scalar> Matrix<T> for Bcsr<T> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn get(&self, row: usize, col: usize) -> T {
        assert!(
            row < self.nrows && col < self.ncols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        let br = row / self.block;
        for (first_col, vals) in self.block_row_entries(br) {
            if col >= first_col && col < first_col + self.block {
                return vals[(row % self.block) * self.block + (col - first_col)];
            }
        }
        T::ZERO
    }

    fn triplets(&self) -> Vec<Triplet<T>> {
        let mut out = Vec::with_capacity(self.nnz);
        for br in 0..self.block_rows() {
            for (first_col, vals) in self.block_row_entries(br) {
                for (k, &v) in vals.iter().enumerate() {
                    if v.is_zero() {
                        continue;
                    }
                    let r = br * self.block + k / self.block;
                    let c = first_col + k % self.block;
                    if r < self.nrows && c < self.ncols {
                        out.push(Triplet::new(r, c, v));
                    }
                }
            }
        }
        out
    }

    fn spmv(&self, x: &[T]) -> Result<Vec<T>, SparseError> {
        check_spmv_operand(self, x)?;
        let mut y = vec![T::ZERO; self.nrows];
        for br in 0..self.block_rows() {
            for (first_col, vals) in self.block_row_entries(br) {
                for local_r in 0..self.block {
                    let r = br * self.block + local_r;
                    if r >= self.nrows {
                        break;
                    }
                    let mut acc = T::ZERO;
                    for local_c in 0..self.block {
                        let c = first_col + local_c;
                        if c >= self.ncols {
                            break;
                        }
                        acc += vals[local_r * self.block + local_c] * x[c];
                    }
                    y[r] += acc;
                }
            }
        }
        Ok(y)
    }

    fn kind(&self) -> FormatKind {
        FormatKind::Bcsr
    }
}

impl<T: Scalar> From<&Coo<T>> for Bcsr<T> {
    /// Converts with the paper's 4×4 block size.
    fn from(coo: &Coo<T>) -> Self {
        Bcsr::from_coo(coo, Bcsr::<T>::PAPER_BLOCK_SIZE).expect("positive block size")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo<f32> {
        // 8x8 with entries scattered over three 4x4 blocks.
        let mut coo = Coo::new(8, 8);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 2, 2.0).unwrap(); // same block as (0,0)
        coo.push(0, 5, 3.0).unwrap(); // block (0,1)
        coo.push(6, 6, 4.0).unwrap(); // block (1,1)
        coo
    }

    #[test]
    fn block_structure() {
        let m = Bcsr::from(&sample());
        assert_eq!(m.block_size(), 4);
        assert_eq!(m.block_rows(), 2);
        assert_eq!(m.num_blocks(), 3);
        assert_eq!(m.block_row_nnz(0), 2);
        assert_eq!(m.block_row_nnz(1), 1);
        assert_eq!(m.nonzero_block_rows(), 2);
        // Values stream includes intra-block zeros: 3 blocks * 16.
        assert_eq!(m.stored_values(), 48);
        // But nnz counts only real entries.
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn indices_are_first_columns() {
        let m = Bcsr::from(&sample());
        assert_eq!(m.indices(), &[0, 4, 4]);
    }

    #[test]
    fn get_inside_and_outside_blocks() {
        let m = Bcsr::from(&sample());
        assert_eq!(m.get(1, 2), 2.0);
        assert_eq!(m.get(1, 3), 0.0); // inside a stored block, zero entry
        assert_eq!(m.get(5, 0), 0.0); // no block there
    }

    #[test]
    fn round_trip_matches_dense() {
        let coo = sample();
        let m = Bcsr::from(&coo);
        assert!(coo.to_dense().structurally_eq(&m));
        assert!(m.to_dense().structurally_eq(&coo));
    }

    #[test]
    fn spmv_matches_dense() {
        let coo = sample();
        let m = Bcsr::from(&coo);
        let x: Vec<f32> = (0..8).map(|i| i as f32 + 1.0).collect();
        assert_eq!(m.spmv(&x).unwrap(), coo.to_dense().spmv(&x).unwrap());
    }

    #[test]
    fn non_multiple_shape_pads_edge_blocks() {
        let mut coo = Coo::<f32>::new(5, 6);
        coo.push(4, 5, 7.0).unwrap();
        let m = Bcsr::from_coo(&coo, 4).unwrap();
        assert_eq!(m.block_rows(), 2);
        assert_eq!(m.block_cols(), 2);
        assert_eq!(m.get(4, 5), 7.0);
        assert_eq!(m.nnz(), 1);
        let x = vec![1.0f32; 6];
        assert_eq!(m.spmv(&x).unwrap(), coo.to_dense().spmv(&x).unwrap());
    }

    #[test]
    fn zero_block_size_is_rejected() {
        let coo = Coo::<f32>::new(4, 4);
        assert!(matches!(
            Bcsr::from_coo(&coo, 0),
            Err(SparseError::InvalidBlockSize { .. })
        ));
    }

    #[test]
    fn alternative_block_sizes() {
        let coo = sample();
        for b in [1, 2, 3, 8] {
            let m = Bcsr::from_coo(&coo, b).unwrap();
            assert!(coo.to_dense().structurally_eq(&m), "block size {b}");
            assert_eq!(m.nnz(), 4, "block size {b}");
        }
    }

    #[test]
    fn cancelling_duplicates_drop_empty_blocks() {
        let mut coo = Coo::<f32>::new(4, 4);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(0, 0, -2.0).unwrap();
        let m = Bcsr::from(&coo);
        assert_eq!(m.num_blocks(), 0);
        assert_eq!(m.nnz(), 0);
    }
}
