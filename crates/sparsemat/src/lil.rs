//! List-of-lists (LIL) format.

use crate::{check_spmv_operand, Coo, FormatKind, Matrix, Scalar, SparseError, Triplet};

/// Which axis the per-line lists run along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Axis {
    /// One list per row holding `(col, value)` pairs — scipy's orientation.
    Rows,
    /// One list per column holding `(row, value)` pairs — the orientation
    /// Copernicus assumes: "LIL, which pushes all the non-zero entries to top
    /// and saves the row indices" (Fig. 1f).
    Columns,
}

/// List-of-lists sparse matrix.
///
/// §2 of the paper: "The LIL sparse format stores one list of non-zero
/// elements per row/column. Each element in the lists stores the
/// column/row indices of that row/column, and their value." Copernicus
/// compresses along columns ([`Axis::Columns`]), which lets the hardware
/// read one element of every column in parallel and reconstruct non-zero
/// rows with a min-scan over the per-column cursors (§5.2, Listing 4).
///
/// Lists are kept sorted by index, so the min-scan semantics of the paper's
/// decompressor apply directly.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Lil<T> {
    nrows: usize,
    ncols: usize,
    axis: Axis,
    /// `lists[line]` holds `(cross_index, value)` sorted by `cross_index`.
    lists: Vec<Vec<(usize, T)>>,
}

impl<T: Scalar> Lil<T> {
    /// Creates an empty LIL matrix with the given orientation.
    pub fn new(nrows: usize, ncols: usize, axis: Axis) -> Self {
        let lines = match axis {
            Axis::Rows => nrows,
            Axis::Columns => ncols,
        };
        Lil {
            nrows,
            ncols,
            axis,
            lists: vec![Vec::new(); lines],
        }
    }

    /// Builds a column-oriented LIL (the Copernicus orientation) from COO.
    pub fn from_coo_columns(coo: &Coo<T>) -> Self {
        Self::build(coo, Axis::Columns)
    }

    /// Builds a row-oriented LIL (the scipy orientation) from COO.
    pub fn from_coo_rows(coo: &Coo<T>) -> Self {
        Self::build(coo, Axis::Rows)
    }

    fn build(coo: &Coo<T>, axis: Axis) -> Self {
        let mut lil = Lil::new(coo.nrows(), coo.ncols(), axis);
        for t in coo.iter() {
            lil.insert(t.row, t.col, t.val)
                .expect("COO entry in bounds");
        }
        lil
    }

    /// Rebuilds this matrix in place as a column-oriented LIL from `coo`,
    /// reusing the per-line lists (and the caller's triplet scratch) —
    /// exactly the matrix [`Lil::from_coo_columns`] builds.
    ///
    /// Duplicate-free, zero-free inputs rebuild without allocating once
    /// capacities are warm; anything else falls back to the allocating
    /// conversion so the insert-merge float summation order is untouched.
    pub fn assign_from_coo_columns(&mut self, coo: &Coo<T>, tmp: &mut Vec<Triplet<T>>) {
        tmp.clear();
        tmp.extend(coo.iter().copied());
        tmp.sort_unstable_by_key(|t| (t.col, t.row));
        let clean = tmp
            .windows(2)
            .all(|w| (w[0].col, w[0].row) < (w[1].col, w[1].row))
            && tmp.iter().all(|t| !t.val.is_zero());
        if !clean {
            *self = Lil::from_coo_columns(coo);
            return;
        }
        self.nrows = coo.nrows();
        self.ncols = coo.ncols();
        self.axis = Axis::Columns;
        for list in &mut self.lists {
            list.clear();
        }
        self.lists.resize_with(self.ncols, Vec::new);
        // Sorted by (col, row): each column's rows arrive ascending, so a
        // plain push reproduces the binary-search inserts of the fallback.
        for t in tmp.iter() {
            self.lists[t.col].push((t.row, t.val));
        }
    }

    /// The list orientation.
    pub fn axis(&self) -> Axis {
        self.axis
    }

    /// Inserts or accumulates a value; entries that cancel to zero are
    /// removed.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if the coordinate lies
    /// outside the shape.
    pub fn insert(&mut self, row: usize, col: usize, val: T) -> Result<(), SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.nrows, self.ncols),
            });
        }
        let (line, cross) = match self.axis {
            Axis::Rows => (row, col),
            Axis::Columns => (col, row),
        };
        let list = &mut self.lists[line];
        match list.binary_search_by_key(&cross, |&(i, _)| i) {
            Ok(pos) => {
                list[pos].1 += val;
                if list[pos].1.is_zero() {
                    list.remove(pos);
                }
            }
            Err(pos) => {
                if !val.is_zero() {
                    list.insert(pos, (cross, val));
                }
            }
        }
        Ok(())
    }

    /// Number of lines (rows for [`Axis::Rows`], columns for
    /// [`Axis::Columns`]).
    pub fn num_lines(&self) -> usize {
        self.lists.len()
    }

    /// The `(cross_index, value)` list of one line, sorted by index.
    ///
    /// # Panics
    ///
    /// Panics if `line >= num_lines()`.
    pub fn line(&self, line: usize) -> &[(usize, T)] {
        &self.lists[line]
    }

    /// Length of the longest line — for column orientation this is the
    /// "longest column" that the paper says bounds LIL's memory transfer
    /// (each transferred LIL row covers one element of every column).
    pub fn max_line_len(&self) -> usize {
        self.lists.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of distinct non-zero cross-indices — for column orientation,
    /// the number of non-zero matrix rows, which §5.2 says determines the
    /// decompression latency.
    pub fn distinct_cross_indices(&self) -> usize {
        let bound = match self.axis {
            Axis::Rows => self.ncols,
            Axis::Columns => self.nrows,
        };
        let mut seen = vec![false; bound];
        for list in &self.lists {
            for &(i, _) in list {
                seen[i] = true;
            }
        }
        seen.iter().filter(|&&b| b).count()
    }
}

impl<T: Scalar> Matrix<T> for Lil<T> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    fn get(&self, row: usize, col: usize) -> T {
        assert!(
            row < self.nrows && col < self.ncols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        let (line, cross) = match self.axis {
            Axis::Rows => (row, col),
            Axis::Columns => (col, row),
        };
        match self.lists[line].binary_search_by_key(&cross, |&(i, _)| i) {
            Ok(pos) => self.lists[line][pos].1,
            Err(_) => T::ZERO,
        }
    }

    fn triplets(&self) -> Vec<Triplet<T>> {
        let mut out = Vec::with_capacity(self.nnz());
        for (line, list) in self.lists.iter().enumerate() {
            for &(cross, val) in list {
                let (row, col) = match self.axis {
                    Axis::Rows => (line, cross),
                    Axis::Columns => (cross, line),
                };
                out.push(Triplet::new(row, col, val));
            }
        }
        crate::triplet::sort_row_major(&mut out);
        out
    }

    fn spmv(&self, x: &[T]) -> Result<Vec<T>, SparseError> {
        check_spmv_operand(self, x)?;
        let mut y = vec![T::ZERO; self.nrows];
        match self.axis {
            Axis::Rows => {
                for (r, list) in self.lists.iter().enumerate() {
                    y[r] = list.iter().map(|&(c, v)| v * x[c]).sum();
                }
            }
            Axis::Columns => {
                for (c, list) in self.lists.iter().enumerate() {
                    let xc = x[c];
                    if xc.is_zero() {
                        continue;
                    }
                    for &(r, v) in list {
                        y[r] += v * xc;
                    }
                }
            }
        }
        Ok(y)
    }

    fn kind(&self) -> FormatKind {
        FormatKind::Lil
    }
}

impl<T: Scalar> From<&Coo<T>> for Lil<T> {
    /// Converts with the Copernicus orientation ([`Axis::Columns`]).
    fn from(coo: &Coo<T>) -> Self {
        Lil::from_coo_columns(coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo<f32> {
        // 1 0 4
        // 0 0 0
        // 2 3 0
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(2, 0, 2.0).unwrap();
        coo.push(2, 1, 3.0).unwrap();
        coo.push(0, 2, 4.0).unwrap();
        coo
    }

    #[test]
    fn column_orientation_structure() {
        let m = Lil::from_coo_columns(&sample());
        assert_eq!(m.axis(), Axis::Columns);
        assert_eq!(m.num_lines(), 3);
        assert_eq!(m.line(0), &[(0, 1.0), (2, 2.0)]);
        assert_eq!(m.line(1), &[(2, 3.0)]);
        assert_eq!(m.max_line_len(), 2);
        // Non-zero rows = {0, 2}.
        assert_eq!(m.distinct_cross_indices(), 2);
    }

    #[test]
    fn row_orientation_structure() {
        let m = Lil::from_coo_rows(&sample());
        assert_eq!(m.num_lines(), 3);
        assert_eq!(m.line(0), &[(0, 1.0), (2, 4.0)]);
        assert_eq!(m.line(1), &[]);
    }

    #[test]
    fn both_orientations_agree_on_content() {
        let coo = sample();
        let cols = Lil::from_coo_columns(&coo);
        let rows = Lil::from_coo_rows(&coo);
        assert_eq!(cols.triplets(), rows.triplets());
        assert!(coo.to_dense().structurally_eq(&cols));
        assert!(coo.to_dense().structurally_eq(&rows));
    }

    #[test]
    fn spmv_matches_dense_for_both_axes() {
        let coo = sample();
        let x = [1.0, 10.0, 100.0];
        let expect = coo.to_dense().spmv(&x).unwrap();
        assert_eq!(Lil::from_coo_columns(&coo).spmv(&x).unwrap(), expect);
        assert_eq!(Lil::from_coo_rows(&coo).spmv(&x).unwrap(), expect);
    }

    #[test]
    fn insert_accumulates_and_cancels() {
        let mut m = Lil::<f32>::new(2, 2, Axis::Columns);
        m.insert(0, 0, 2.0).unwrap();
        m.insert(0, 0, 3.0).unwrap();
        assert_eq!(m.get(0, 0), 5.0);
        m.insert(0, 0, -5.0).unwrap();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn insert_keeps_lists_sorted() {
        let mut m = Lil::<f32>::new(4, 1, Axis::Columns);
        m.insert(3, 0, 1.0).unwrap();
        m.insert(0, 0, 2.0).unwrap();
        m.insert(2, 0, 3.0).unwrap();
        let idxs: Vec<usize> = m.line(0).iter().map(|&(i, _)| i).collect();
        assert_eq!(idxs, vec![0, 2, 3]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = Lil::<f32>::new(2, 2, Axis::Rows);
        assert!(m.insert(0, 5, 1.0).is_err());
    }

    #[test]
    fn coo_round_trip() {
        let coo = sample();
        let m = Lil::from(&coo);
        let back = Lil::from(&m.to_coo());
        assert_eq!(m, back);
    }
}
