//! Hybrid ELL+COO format — §2 of the paper: "ELL+COO mixes ELL and COO
//! formats to reduce the width of long rows."

use crate::{check_spmv_operand, Coo, Csr, Ell, FormatKind, Matrix, Scalar, SparseError, Triplet};

/// Hybrid ELL+COO matrix: the first `width` entries of every row live in a
/// regular [`Ell`] block, the overflow of pathologically long rows spills
/// into a [`Coo`] tail.
///
/// This keeps the SIMD-friendly fixed-width fast path of ELL while bounding
/// its padding: one heavy row no longer widens the whole matrix. cuSPARSE's
/// legacy HYB format is the same idea.
///
/// The [`Matrix`] implementation reports the hybrid under
/// [`FormatKind::Ell`]'s family but exposes the split through
/// [`EllCoo::ell`] / [`EllCoo::tail`] for hardware models that want to cost
/// the two parts separately.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EllCoo<T> {
    ell: Ell<T>,
    tail: Coo<T>,
}

impl<T: Scalar> EllCoo<T> {
    /// Splits a matrix at the given ELL width: each row's first `width`
    /// entries go to the ELL block, the rest to the COO tail.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidBlockSize`] when `width == 0` and the
    /// matrix has entries (everything would land in the tail, which is just
    /// COO — ask for what you mean instead).
    pub fn from_coo_with_width(coo: &Coo<T>, width: usize) -> Result<Self, SparseError> {
        if width == 0 && coo.nnz() > 0 {
            return Err(SparseError::InvalidBlockSize {
                size: 0,
                requirement: "ELL width must be positive for a hybrid split",
            });
        }
        let csr = Csr::from(coo);
        let mut head = Coo::with_capacity(coo.nrows(), coo.ncols(), coo.nnz());
        let mut tail = Coo::new(coo.nrows(), coo.ncols());
        for r in 0..csr.nrows() {
            for (s, (c, v)) in csr.row_entries(r).enumerate() {
                if s < width {
                    head.push(r, c, v)?;
                } else {
                    tail.push(r, c, v)?;
                }
            }
        }
        Ok(EllCoo {
            ell: Ell::from_coo_with_width(&head, width)?,
            tail,
        })
    }

    /// Splits at a width that covers a `coverage` fraction of the rows with
    /// no overflow (e.g. 0.95 = 95 % of rows fit entirely in the ELL part)
    /// — the usual HYB heuristic.
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is outside `[0, 1]`.
    pub fn from_coo_with_coverage(coo: &Coo<T>, coverage: f64) -> Result<Self, SparseError> {
        assert!(
            (0.0..=1.0).contains(&coverage),
            "coverage {coverage} outside [0, 1]"
        );
        let mut lens = coo.row_counts();
        lens.sort_unstable();
        let idx = ((lens.len() as f64 - 1.0) * coverage).round() as usize;
        let width = lens.get(idx).copied().unwrap_or(0).max(1);
        Self::from_coo_with_width(coo, width)
    }

    /// The regular fixed-width part.
    pub fn ell(&self) -> &Ell<T> {
        &self.ell
    }

    /// The overflow tail.
    pub fn tail(&self) -> &Coo<T> {
        &self.tail
    }

    /// Entries stored in the ELL part.
    pub fn ell_nnz(&self) -> usize {
        self.ell.nnz()
    }

    /// Entries spilled to the COO tail.
    pub fn tail_nnz(&self) -> usize {
        self.tail.nnz()
    }

    /// Padding slots in the ELL part — always at most the pure-ELL padding
    /// of the same matrix (the property the hybrid exists to provide).
    pub fn padding(&self) -> usize {
        self.ell.padding()
    }
}

impl<T: Scalar> Matrix<T> for EllCoo<T> {
    fn nrows(&self) -> usize {
        self.ell.nrows()
    }

    fn ncols(&self) -> usize {
        self.ell.ncols()
    }

    fn nnz(&self) -> usize {
        self.ell.nnz() + self.tail.nnz()
    }

    fn get(&self, row: usize, col: usize) -> T {
        let head = self.ell.get(row, col);
        if !head.is_zero() {
            head
        } else {
            self.tail.get(row, col)
        }
    }

    fn triplets(&self) -> Vec<Triplet<T>> {
        let mut out = self.ell.triplets();
        out.extend(self.tail.triplets());
        crate::triplet::sort_row_major(&mut out);
        out
    }

    fn spmv(&self, x: &[T]) -> Result<Vec<T>, SparseError> {
        check_spmv_operand(self, x)?;
        // Fast fixed-width sweep, then the sparse fix-up pass.
        let mut y = self.ell.spmv(x)?;
        for t in self.tail.iter() {
            y[t.row] += t.val * x[t.col];
        }
        Ok(y)
    }

    fn kind(&self) -> FormatKind {
        FormatKind::Ell
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ragged() -> Coo<f32> {
        // Row 0: 7 entries, row 2: 2 entries, row 3: 1 entry.
        let mut coo = Coo::new(4, 8);
        for c in 0..7 {
            coo.push(0, c, (c + 1) as f32).unwrap();
        }
        coo.push(2, 1, 8.0).unwrap();
        coo.push(2, 5, 9.0).unwrap();
        coo.push(3, 7, 10.0).unwrap();
        coo
    }

    #[test]
    fn split_puts_overflow_in_tail() {
        let h = EllCoo::from_coo_with_width(&ragged(), 2).unwrap();
        assert_eq!(h.ell().width(), 2);
        assert_eq!(h.ell_nnz(), 2 + 2 + 1); // rows contribute min(len, 2)
        assert_eq!(h.tail_nnz(), 5); // row 0's entries 3..7
        assert_eq!(h.nnz(), 10);
    }

    #[test]
    fn round_trip_and_get() {
        let coo = ragged();
        let h = EllCoo::from_coo_with_width(&coo, 3).unwrap();
        assert!(coo.to_dense().structurally_eq(&h));
        assert_eq!(h.get(0, 6), 7.0); // tail entry
        assert_eq!(h.get(0, 0), 1.0); // ell entry
        assert_eq!(h.get(1, 1), 0.0);
    }

    #[test]
    fn spmv_matches_dense_for_all_widths() {
        let coo = ragged();
        let x: Vec<f32> = (0..8).map(|i| (i + 1) as f32).collect();
        let expect = coo.to_dense().spmv(&x).unwrap();
        for width in 1..=8 {
            let h = EllCoo::from_coo_with_width(&coo, width).unwrap();
            assert_eq!(h.spmv(&x).unwrap(), expect, "width {width}");
        }
    }

    #[test]
    fn hybrid_pads_less_than_pure_ell() {
        let coo = ragged();
        let pure = Ell::from(&coo);
        let h = EllCoo::from_coo_with_width(&coo, 2).unwrap();
        assert!(h.padding() < pure.padding());
    }

    #[test]
    fn coverage_heuristic_picks_a_row_quantile() {
        let coo = ragged();
        // Full coverage means no tail.
        let full = EllCoo::from_coo_with_coverage(&coo, 1.0).unwrap();
        assert_eq!(full.tail_nnz(), 0);
        // Median coverage keeps the heavy row's overflow in the tail.
        let half = EllCoo::from_coo_with_coverage(&coo, 0.5).unwrap();
        assert!(half.tail_nnz() > 0);
        assert!(half.ell().width() < Ell::from(&coo).width());
    }

    #[test]
    fn zero_width_rejected_for_nonempty() {
        assert!(EllCoo::from_coo_with_width(&ragged(), 0).is_err());
        // But allowed for a genuinely empty matrix.
        assert!(EllCoo::from_coo_with_width(&Coo::<f32>::new(3, 3), 0).is_ok());
    }

    #[test]
    fn wide_split_leaves_tail_empty() {
        let h = EllCoo::from_coo_with_width(&ragged(), 7).unwrap();
        assert_eq!(h.tail_nnz(), 0);
        assert_eq!(h.ell_nnz(), 10);
    }
}
