//! Block compressed sparse column (BCSC) format — the column-wise sibling
//! §2 of the paper introduces together with BCSR.

use crate::{check_spmv_operand, Coo, FormatKind, Matrix, Scalar, SparseError, Triplet};

/// Block compressed sparse column matrix with square `b×b` blocks.
///
/// Identical to [`crate::Bcsr`] with rows and columns exchanged: `offsets`
/// counts non-zero blocks per *block-column*, `indices` stores the first
/// *row* of each block, and block values are flattened row-major.
///
/// Like CSC on the paper's row-oriented platform, BCSC exists mainly as
/// the orientation counterpart; its SpMV is a block-column scatter.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Bcsc<T> {
    nrows: usize,
    ncols: usize,
    block: usize,
    /// Non-zero-block pointers per block-column (`block_cols + 1` entries).
    offsets: Vec<usize>,
    /// First-row index of each stored block, block-column by block-column.
    indices: Vec<usize>,
    /// Flattened row-major `b×b` values of each stored block.
    values: Vec<T>,
    nnz: usize,
}

impl<T: Scalar> Bcsc<T> {
    /// Builds a BCSC matrix from a COO matrix with the given block size.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidBlockSize`] when `block == 0`.
    pub fn from_coo(coo: &Coo<T>, block: usize) -> Result<Self, SparseError> {
        if block == 0 {
            return Err(SparseError::InvalidBlockSize {
                size: 0,
                requirement: "block size must be positive",
            });
        }
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        let block_cols = ncols.div_ceil(block);

        // Bucket entries by (block_col, block_row) — column-major block
        // order.
        let mut buckets: std::collections::BTreeMap<(usize, usize), Vec<T>> =
            std::collections::BTreeMap::new();
        for t in coo.iter() {
            let key = (t.col / block, t.row / block);
            let slot = buckets
                .entry(key)
                .or_insert_with(|| vec![T::ZERO; block * block]);
            slot[(t.row % block) * block + t.col % block] += t.val;
        }
        buckets.retain(|_, v| v.iter().any(|x| !x.is_zero()));

        let mut offsets = vec![0usize; block_cols + 1];
        let mut indices = Vec::with_capacity(buckets.len());
        let mut values = Vec::with_capacity(buckets.len() * block * block);
        let mut nnz = 0usize;
        for (&(bc, br), block_vals) in &buckets {
            offsets[bc + 1] += 1;
            indices.push(br * block);
            nnz += block_vals.iter().filter(|v| !v.is_zero()).count();
            values.extend_from_slice(block_vals);
        }
        for i in 0..block_cols {
            offsets[i + 1] += offsets[i];
        }
        Ok(Bcsc {
            nrows,
            ncols,
            block,
            offsets,
            indices,
            values,
            nnz,
        })
    }

    /// The block edge length `b`.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Number of block columns (`ceil(ncols / b)`).
    pub fn block_cols(&self) -> usize {
        self.ncols.div_ceil(self.block)
    }

    /// Total number of stored (non-zero) blocks.
    pub fn num_blocks(&self) -> usize {
        self.indices.len()
    }

    /// Number of stored blocks in block-column `bc`.
    ///
    /// # Panics
    ///
    /// Panics if `bc >= block_cols()`.
    pub fn block_col_nnz(&self, bc: usize) -> usize {
        assert!(bc < self.block_cols(), "block column {bc} out of bounds");
        self.offsets[bc + 1] - self.offsets[bc]
    }

    /// Iterates over the blocks of block-column `bc` as
    /// `(first_row, block_values)` with `block_values.len() == b²`.
    ///
    /// # Panics
    ///
    /// Panics if `bc >= block_cols()`.
    pub fn block_col_entries(&self, bc: usize) -> impl Iterator<Item = (usize, &[T])> + '_ {
        assert!(bc < self.block_cols(), "block column {bc} out of bounds");
        let b2 = self.block * self.block;
        (self.offsets[bc]..self.offsets[bc + 1])
            .map(move |k| (self.indices[k], &self.values[k * b2..(k + 1) * b2]))
    }

    /// Total scalars stored for values (`num_blocks · b²`), intra-block
    /// zeros included.
    pub fn stored_values(&self) -> usize {
        self.values.len()
    }
}

impl<T: Scalar> Matrix<T> for Bcsc<T> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn get(&self, row: usize, col: usize) -> T {
        assert!(
            row < self.nrows && col < self.ncols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        let bc = col / self.block;
        for (first_row, vals) in self.block_col_entries(bc) {
            if row >= first_row && row < first_row + self.block {
                return vals[(row - first_row) * self.block + col % self.block];
            }
        }
        T::ZERO
    }

    fn triplets(&self) -> Vec<Triplet<T>> {
        let mut out = Vec::with_capacity(self.nnz);
        for bc in 0..self.block_cols() {
            for (first_row, vals) in self.block_col_entries(bc) {
                for (k, &v) in vals.iter().enumerate() {
                    if v.is_zero() {
                        continue;
                    }
                    let r = first_row + k / self.block;
                    let c = bc * self.block + k % self.block;
                    if r < self.nrows && c < self.ncols {
                        out.push(Triplet::new(r, c, v));
                    }
                }
            }
        }
        crate::triplet::sort_row_major(&mut out);
        out
    }

    fn spmv(&self, x: &[T]) -> Result<Vec<T>, SparseError> {
        check_spmv_operand(self, x)?;
        // Block-column scatter: y[block] += B · x[block cols].
        let mut y = vec![T::ZERO; self.nrows];
        for bc in 0..self.block_cols() {
            let col0 = bc * self.block;
            for (first_row, vals) in self.block_col_entries(bc) {
                for lr in 0..self.block {
                    let r = first_row + lr;
                    if r >= self.nrows {
                        break;
                    }
                    let mut acc = T::ZERO;
                    for lc in 0..self.block {
                        let c = col0 + lc;
                        if c >= self.ncols {
                            break;
                        }
                        acc += vals[lr * self.block + lc] * x[c];
                    }
                    y[r] += acc;
                }
            }
        }
        Ok(y)
    }

    fn kind(&self) -> FormatKind {
        FormatKind::Bcsc
    }
}

impl<T: Scalar> From<&Coo<T>> for Bcsc<T> {
    /// Converts with the paper's 4×4 block size.
    fn from(coo: &Coo<T>) -> Self {
        Bcsc::from_coo(coo, crate::Bcsr::<T>::PAPER_BLOCK_SIZE).expect("positive block size")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bcsr;

    fn sample() -> Coo<f32> {
        let mut coo = Coo::new(8, 8);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 2, 2.0).unwrap();
        coo.push(0, 5, 3.0).unwrap();
        coo.push(6, 6, 4.0).unwrap();
        coo.push(7, 0, 5.0).unwrap();
        coo
    }

    #[test]
    fn block_structure_is_column_major() {
        let m = Bcsc::from(&sample());
        assert_eq!(m.block_size(), 4);
        assert_eq!(m.block_cols(), 2);
        // Blocks: col0 {(0,0) area, (7,0) area}, col1 {(0,5), (6,6)}.
        assert_eq!(m.num_blocks(), 4);
        assert_eq!(m.block_col_nnz(0), 2);
        assert_eq!(m.block_col_nnz(1), 2);
        assert_eq!(m.stored_values(), 4 * 16);
        assert_eq!(m.nnz(), 5);
    }

    #[test]
    fn round_trip_matches_dense() {
        let coo = sample();
        let m = Bcsc::from(&coo);
        assert!(coo.to_dense().structurally_eq(&m));
    }

    #[test]
    fn spmv_matches_dense() {
        let coo = sample();
        let m = Bcsc::from(&coo);
        let x: Vec<f32> = (0..8).map(|i| (i as f32) - 3.0).collect();
        assert_eq!(m.spmv(&x).unwrap(), coo.to_dense().spmv(&x).unwrap());
    }

    #[test]
    fn bcsc_and_bcsr_store_the_same_entry_set() {
        let coo = sample();
        let bcsc = Bcsc::from(&coo);
        let bcsr = Bcsr::from(&coo);
        let mut a = bcsc.triplets();
        let mut b = bcsr.triplets();
        crate::triplet::sort_row_major(&mut a);
        crate::triplet::sort_row_major(&mut b);
        assert_eq!(a, b);
        assert_eq!(bcsc.num_blocks(), bcsr.num_blocks());
    }

    #[test]
    fn get_hits_and_misses() {
        let m = Bcsc::from(&sample());
        assert_eq!(m.get(1, 2), 2.0);
        assert_eq!(m.get(1, 3), 0.0);
        assert_eq!(m.get(4, 4), 0.0);
    }

    #[test]
    fn non_multiple_shapes_work() {
        let mut coo = Coo::<f32>::new(5, 7);
        coo.push(4, 6, 9.0).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        let m = Bcsc::from_coo(&coo, 4).unwrap();
        assert!(coo.to_dense().structurally_eq(&m));
        let x = vec![1.0f32; 7];
        assert_eq!(m.spmv(&x).unwrap(), coo.to_dense().spmv(&x).unwrap());
    }

    #[test]
    fn zero_block_size_rejected() {
        assert!(matches!(
            Bcsc::from_coo(&sample(), 0),
            Err(SparseError::InvalidBlockSize { .. })
        ));
    }
}
