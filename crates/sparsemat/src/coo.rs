//! Coordinate (COO) format — triplet list and conversion hub.

use crate::triplet::sort_row_major;
use crate::{check_spmv_operand, FormatKind, Matrix, Scalar, SparseError, Triplet};

/// Coordinate-format sparse matrix: a list of `(row, col, value)` tuples.
///
/// §2 of the paper: "The COO sparse format simply stores a series of tuples,
/// including the row index, column index, and value for each of the non-zero
/// entries." Copernicus finds COO to be the most *balanced* format on diverse
/// workloads (its bandwidth utilization is pinned at 1/3 because two indices
/// accompany every value).
///
/// `Coo` is also this crate's conversion hub: every other format implements
/// `From<&Coo<T>>` and [`Matrix::to_coo`], so any pair of formats converts
/// through it losslessly.
///
/// Duplicate coordinates are permitted in a freshly built list (they add up
/// in SpMV and densification, matching scipy semantics) and are merged by
/// [`Coo::compress`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Coo<T> {
    nrows: usize,
    ncols: usize,
    entries: Vec<Triplet<T>>,
}

impl<T: Scalar> Coo<T> {
    /// Creates an empty COO matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Coo {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty COO matrix with capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Coo {
            nrows,
            ncols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Builds a COO matrix directly from a triplet list.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if any triplet lies outside
    /// the shape.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: Vec<Triplet<T>>,
    ) -> Result<Self, SparseError> {
        for t in &triplets {
            if t.row >= nrows || t.col >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    index: (t.row, t.col),
                    shape: (nrows, ncols),
                });
            }
        }
        Ok(Coo {
            nrows,
            ncols,
            entries: triplets,
        })
    }

    /// Appends one entry.
    ///
    /// Zero values are silently dropped — they are not "non-zero entries"
    /// and no format in the paper stores them.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if `(row, col)` is outside
    /// the shape.
    pub fn push(&mut self, row: usize, col: usize, val: T) -> Result<(), SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.nrows, self.ncols),
            });
        }
        if !val.is_zero() {
            self.entries.push(Triplet::new(row, col, val));
        }
        Ok(())
    }

    /// Iterates over the stored triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Triplet<T>> {
        self.entries.iter()
    }

    /// Replaces this matrix's shape and entries with a copy of `other`,
    /// reusing the entry buffer — the allocation-free counterpart of
    /// `clone_from` for warm scratch pools.
    pub fn assign_from(&mut self, other: &Coo<T>) {
        self.nrows = other.nrows;
        self.ncols = other.ncols;
        self.entries.clear();
        self.entries.extend_from_slice(&other.entries);
    }

    /// Sorts entries row-major and merges duplicate coordinates by summation,
    /// dropping entries that cancel to zero.
    ///
    /// The merge is a two-pointer compaction of the sorted buffer, so apart
    /// from the sort's own workspace no allocation happens.
    pub fn compress(&mut self) {
        sort_row_major(&mut self.entries);
        let mut kept = 0usize;
        for i in 0..self.entries.len() {
            let t = self.entries[i];
            match self.entries[..kept].last_mut() {
                Some(last) if last.row == t.row && last.col == t.col => last.val += t.val,
                _ => {
                    self.entries[kept] = t;
                    kept += 1;
                }
            }
        }
        self.entries.truncate(kept);
        self.entries.retain(|t| !t.val.is_zero());
    }

    /// Whether the entries are sorted row-major with no duplicate
    /// coordinates (the postcondition of [`Coo::compress`]).
    pub fn is_compressed(&self) -> bool {
        self.entries
            .windows(2)
            .all(|w| (w[0].row, w[0].col) < (w[1].row, w[1].col))
    }

    /// The transpose as a new COO matrix.
    pub fn transpose(&self) -> Coo<T> {
        Coo {
            nrows: self.ncols,
            ncols: self.nrows,
            entries: self.entries.iter().map(|t| t.transposed()).collect(),
        }
    }

    /// Number of rows containing at least one entry.
    pub fn nonzero_rows(&self) -> usize {
        let mut seen = vec![false; self.nrows];
        for t in &self.entries {
            seen[t.row] = true;
        }
        seen.iter().filter(|&&b| b).count()
    }

    /// Per-row entry counts (length `nrows`).
    pub fn row_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nrows];
        for t in &self.entries {
            counts[t.row] += 1;
        }
        counts
    }

    /// Per-column entry counts (length `ncols`).
    pub fn col_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.ncols];
        for t in &self.entries {
            counts[t.col] += 1;
        }
        counts
    }

    /// The set of occupied diagonals as `col - row` offsets, ascending.
    pub fn diagonal_offsets(&self) -> Vec<isize> {
        let mut offs: Vec<isize> = self
            .entries
            .iter()
            .map(|t| t.col as isize - t.row as isize)
            .collect();
        offs.sort_unstable();
        offs.dedup();
        offs
    }
}

impl<T: Scalar> Matrix<T> for Coo<T> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.entries.len()
    }

    fn get(&self, row: usize, col: usize) -> T {
        assert!(
            row < self.nrows && col < self.ncols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        self.entries
            .iter()
            .filter(|t| t.row == row && t.col == col)
            .map(|t| t.val)
            .sum()
    }

    fn triplets(&self) -> Vec<Triplet<T>> {
        self.entries.clone()
    }

    fn to_coo(&self) -> Coo<T> {
        self.clone()
    }

    fn spmv(&self, x: &[T]) -> Result<Vec<T>, SparseError> {
        check_spmv_operand(self, x)?;
        let mut y = vec![T::ZERO; self.nrows];
        for t in &self.entries {
            y[t.row] += t.val * x[t.col];
        }
        Ok(y)
    }

    fn kind(&self) -> FormatKind {
        FormatKind::Coo
    }
}

impl<T: Scalar> FromIterator<Triplet<T>> for Coo<T> {
    /// Collects triplets into a COO matrix shaped to the maximal coordinates.
    fn from_iter<I: IntoIterator<Item = Triplet<T>>>(iter: I) -> Self {
        let entries: Vec<Triplet<T>> = iter.into_iter().filter(|t| !t.val.is_zero()).collect();
        let nrows = entries.iter().map(|t| t.row + 1).max().unwrap_or(0);
        let ncols = entries.iter().map(|t| t.col + 1).max().unwrap_or(0);
        Coo {
            nrows,
            ncols,
            entries,
        }
    }
}

impl<T: Scalar> Extend<Triplet<T>> for Coo<T> {
    /// Appends triplets, panicking on out-of-bounds coordinates.
    fn extend<I: IntoIterator<Item = Triplet<T>>>(&mut self, iter: I) {
        for t in iter {
            self.push(t.row, t.col, t.val)
                .expect("extend received an out-of-bounds triplet");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo<f32> {
        let mut c = Coo::new(3, 3);
        c.push(0, 0, 1.0).unwrap();
        c.push(2, 1, 2.0).unwrap();
        c.push(1, 2, 3.0).unwrap();
        c
    }

    #[test]
    fn push_and_get() {
        let c = sample();
        assert_eq!(c.nnz(), 3);
        assert_eq!(c.get(2, 1), 2.0);
        assert_eq!(c.get(0, 1), 0.0);
    }

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut c = Coo::<f32>::new(2, 2);
        assert!(matches!(
            c.push(2, 0, 1.0),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn push_drops_explicit_zero() {
        let mut c = Coo::<f32>::new(2, 2);
        c.push(0, 0, 0.0).unwrap();
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn duplicates_sum_in_get_and_spmv() {
        let mut c = Coo::<f32>::new(2, 2);
        c.push(0, 0, 1.0).unwrap();
        c.push(0, 0, 2.0).unwrap();
        assert_eq!(c.get(0, 0), 3.0);
        assert_eq!(c.spmv(&[1.0, 0.0]).unwrap(), vec![3.0, 0.0]);
    }

    #[test]
    fn compress_merges_and_sorts() {
        let mut c = Coo::<f32>::new(2, 2);
        c.push(1, 1, 1.0).unwrap();
        c.push(0, 0, 1.0).unwrap();
        c.push(1, 1, 2.0).unwrap();
        assert!(!c.is_compressed());
        c.compress();
        assert!(c.is_compressed());
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get(1, 1), 3.0);
    }

    #[test]
    fn compress_drops_cancelled_entries() {
        let mut c = Coo::<f32>::new(2, 2);
        c.push(0, 1, 5.0).unwrap();
        c.push(0, 1, -5.0).unwrap();
        c.compress();
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn transpose_round_trip() {
        let c = sample();
        let tt = c.transpose().transpose();
        assert!(c.to_dense().structurally_eq(&tt));
    }

    #[test]
    fn spmv_matches_dense() {
        let c = sample();
        let x = [1.0, 2.0, 4.0];
        assert_eq!(c.spmv(&x).unwrap(), c.to_dense().spmv(&x).unwrap());
    }

    #[test]
    fn row_and_col_counts() {
        let c = sample();
        assert_eq!(c.row_counts(), vec![1, 1, 1]);
        assert_eq!(c.col_counts(), vec![1, 1, 1]);
        assert_eq!(c.nonzero_rows(), 3);
    }

    #[test]
    fn diagonal_offsets_are_sorted_unique() {
        let c = sample();
        // entries: (0,0)->0, (2,1)->-1, (1,2)->+1
        assert_eq!(c.diagonal_offsets(), vec![-1, 0, 1]);
    }

    #[test]
    fn from_iterator_infers_shape() {
        let c: Coo<f32> = vec![Triplet::new(1, 4, 2.0), Triplet::new(3, 0, 1.0)]
            .into_iter()
            .collect();
        assert_eq!((c.nrows(), c.ncols()), (4, 5));
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn from_triplets_validates_bounds() {
        let bad = Coo::from_triplets(2, 2, vec![Triplet::new(5, 0, 1.0f32)]);
        assert!(bad.is_err());
    }
}
