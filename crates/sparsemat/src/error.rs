//! Error type shared by all fallible operations in the crate.

use std::fmt;

/// Errors produced by sparse-matrix construction, conversion and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparseError {
    /// An index was outside the matrix shape.
    IndexOutOfBounds {
        /// Offending (row, col).
        index: (usize, usize),
        /// Matrix shape (nrows, ncols).
        shape: (usize, usize),
    },
    /// Two operands (or an operand and a constructor argument) disagreed on
    /// shape.
    ShapeMismatch {
        /// Shape the operation required.
        expected: (usize, usize),
        /// Shape it was given.
        found: (usize, usize),
    },
    /// Raw arrays handed to a `from_raw_parts`-style constructor violated the
    /// format's structural invariants (non-monotonic offsets, index array
    /// length mismatch, …).
    InvalidStructure(String),
    /// A block or slice size parameter was zero or did not divide the shape
    /// where the format requires it to.
    InvalidBlockSize {
        /// The offending parameter.
        size: usize,
        /// Human-readable constraint description.
        requirement: &'static str,
    },
    /// A format label could not be parsed (see
    /// [`FormatKind::from_str`](crate::FormatKind)).
    UnknownFormat(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            SparseError::ShapeMismatch { expected, found } => write!(
                f,
                "shape mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            SparseError::InvalidStructure(msg) => {
                write!(f, "invalid format structure: {msg}")
            }
            SparseError::InvalidBlockSize { size, requirement } => {
                write!(f, "invalid block/slice size {size}: {requirement}")
            }
            SparseError::UnknownFormat(s) => write!(f, "unknown sparse format {s:?}"),
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparseError::IndexOutOfBounds {
            index: (4, 7),
            shape: (3, 3),
        };
        assert_eq!(e.to_string(), "index (4, 7) out of bounds for 3x3 matrix");

        let e = SparseError::ShapeMismatch {
            expected: (8, 1),
            found: (5, 1),
        };
        assert!(e.to_string().contains("expected 8x1"));

        let e = SparseError::UnknownFormat("XYZ".into());
        assert!(e.to_string().contains("XYZ"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
