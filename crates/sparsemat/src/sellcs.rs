//! SELL-C-σ — §2 of the paper: "SELL-C-σ is a variant of JDS that only
//! sorts rows within a window of σ" (Kreutzer et al., SIAM J. Sci. Comp.
//! 2014).

use crate::ell::PAD;
use crate::sell::SellSlice;
use crate::{check_spmv_operand, Coo, Csr, FormatKind, Matrix, Scalar, SparseError, Triplet};

/// SELL-C-σ sparse matrix: rows are sorted by descending population inside
/// windows of `sigma` rows, then sliced into chunks of `c` rows, each chunk
/// padded to its own local width.
///
/// The windowed sort gives chunks with near-uniform row lengths (so the
/// padding of plain [`crate::Sell`] shrinks further) while keeping rows
/// close to their original position — full JDS sorting destroys locality,
/// σ-windowed sorting bounds the damage to `sigma` rows.
///
/// The stored permutation maps slice-local rows back to original row
/// indices, so [`Matrix::spmv`] produces the output in original order.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SellCSigma<T> {
    nrows: usize,
    ncols: usize,
    chunk: usize,
    sigma: usize,
    /// `perm[sorted_position] = original_row`.
    perm: Vec<usize>,
    slices: Vec<SellSlice<T>>,
    nnz: usize,
}

impl<T: Scalar> SellCSigma<T> {
    /// Builds a SELL-C-σ matrix with chunk height `c` and sort window
    /// `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidBlockSize`] when `c == 0` or
    /// `sigma == 0`, or when `sigma` is not a multiple of `c` (the format's
    /// defining constraint: sort windows must align with whole chunks).
    pub fn from_coo(coo: &Coo<T>, c: usize, sigma: usize) -> Result<Self, SparseError> {
        if c == 0 {
            return Err(SparseError::InvalidBlockSize {
                size: 0,
                requirement: "chunk height C must be positive",
            });
        }
        if sigma == 0 || !sigma.is_multiple_of(c) {
            return Err(SparseError::InvalidBlockSize {
                size: sigma,
                requirement: "sort window sigma must be a positive multiple of C",
            });
        }
        let csr = Csr::from(coo);
        let nrows = coo.nrows();

        // Windowed sort: inside each sigma-window, order rows by descending
        // population (stable, so equal rows keep their relative order).
        let mut perm: Vec<usize> = (0..nrows).collect();
        for window in perm.chunks_mut(sigma) {
            window.sort_by_key(|&r| std::cmp::Reverse(csr.row_nnz(r)));
        }

        // Slice the permuted row order into chunks of c, ELL-packing each.
        let mut slices = Vec::with_capacity(nrows.div_ceil(c));
        let mut first_row = 0;
        while first_row < nrows {
            let rows = c.min(nrows - first_row);
            let width = perm[first_row..first_row + rows]
                .iter()
                .map(|&r| csr.row_nnz(r))
                .max()
                .unwrap_or(0);
            let mut indices = vec![PAD; rows * width];
            let mut values = vec![T::ZERO; rows * width];
            for local in 0..rows {
                let orig = perm[first_row + local];
                for (s, (col, v)) in csr.row_entries(orig).enumerate() {
                    indices[local * width + s] = col;
                    values[local * width + s] = v;
                }
            }
            slices.push(SellSlice {
                first_row,
                rows,
                width,
                indices,
                values,
            });
            first_row += rows;
        }
        Ok(SellCSigma {
            nrows,
            ncols: coo.ncols(),
            chunk: c,
            sigma,
            perm,
            slices,
            nnz: csr.nnz(),
        })
    }

    /// The chunk height `C`.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// The sort window `σ`.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// The row permutation (`perm[sorted_position] = original_row`).
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// The packed slices, in sorted-row order.
    pub fn slices(&self) -> &[SellSlice<T>] {
        &self.slices
    }

    /// Total padding slots — between plain SELL's (σ = C) and JDS-grade
    /// (σ = nrows) packing.
    pub fn padding(&self) -> usize {
        let slots: usize = self.slices.iter().map(|s| s.indices.len()).sum();
        slots - self.nnz
    }
}

impl<T: Scalar> Matrix<T> for SellCSigma<T> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn get(&self, row: usize, col: usize) -> T {
        assert!(
            row < self.nrows && col < self.ncols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        let pos = self
            .perm
            .iter()
            .position(|&r| r == row)
            .expect("permutation covers all rows");
        let slice = &self.slices[pos / self.chunk];
        let local = pos - slice.first_row;
        for s in 0..slice.width {
            let c = slice.indices[local * slice.width + s];
            if c == col {
                return slice.values[local * slice.width + s];
            }
            if c == PAD {
                break;
            }
        }
        T::ZERO
    }

    fn triplets(&self) -> Vec<Triplet<T>> {
        let mut out = Vec::with_capacity(self.nnz);
        for slice in &self.slices {
            for local in 0..slice.rows {
                let orig = self.perm[slice.first_row + local];
                for s in 0..slice.width {
                    let c = slice.indices[local * slice.width + s];
                    if c == PAD {
                        break;
                    }
                    out.push(Triplet::new(orig, c, slice.values[local * slice.width + s]));
                }
            }
        }
        crate::triplet::sort_row_major(&mut out);
        out
    }

    fn spmv(&self, x: &[T]) -> Result<Vec<T>, SparseError> {
        check_spmv_operand(self, x)?;
        let mut y = vec![T::ZERO; self.nrows];
        for slice in &self.slices {
            for local in 0..slice.rows {
                let range = local * slice.width..(local + 1) * slice.width;
                let acc: T = slice.indices[range.clone()]
                    .iter()
                    .zip(&slice.values[range])
                    .map(|(&c, &v)| if c == PAD { T::ZERO } else { v * x[c] })
                    .sum();
                y[self.perm[slice.first_row + local]] = acc;
            }
        }
        Ok(y)
    }

    fn kind(&self) -> FormatKind {
        FormatKind::Sell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sell;

    fn ragged() -> Coo<f32> {
        // Alternating heavy/light rows: windowed sorting pairs similar rows.
        let mut coo = Coo::new(8, 8);
        for r in 0..8usize {
            let len = if r % 2 == 0 { 4 } else { 1 };
            for c in 0..len {
                coo.push(r, c, (r * 8 + c + 1) as f32).unwrap();
            }
        }
        coo
    }

    #[test]
    fn validates_parameters() {
        let coo = ragged();
        assert!(SellCSigma::from_coo(&coo, 0, 4).is_err());
        assert!(SellCSigma::from_coo(&coo, 2, 0).is_err());
        assert!(SellCSigma::from_coo(&coo, 2, 3).is_err()); // not a multiple
        assert!(SellCSigma::from_coo(&coo, 2, 4).is_ok());
    }

    #[test]
    fn round_trip_and_spmv() {
        let coo = ragged();
        let x: Vec<f32> = (0..8).map(|i| (i + 1) as f32).collect();
        let expect = coo.to_dense().spmv(&x).unwrap();
        for (c, sigma) in [(2, 2), (2, 4), (2, 8), (4, 8), (8, 8)] {
            let m = SellCSigma::from_coo(&coo, c, sigma).unwrap();
            assert!(coo.to_dense().structurally_eq(&m), "C={c} σ={sigma}");
            assert_eq!(m.spmv(&x).unwrap(), expect, "C={c} σ={sigma}");
        }
    }

    #[test]
    fn wider_sort_windows_reduce_padding() {
        // σ = C is plain SELL; σ = nrows is JDS-grade packing. On the
        // alternating workload, sorting within windows of 4 pairs heavy rows
        // together and must strictly beat no sorting.
        let coo = ragged();
        let unsorted = SellCSigma::from_coo(&coo, 2, 2).unwrap();
        let windowed = SellCSigma::from_coo(&coo, 2, 4).unwrap();
        let global = SellCSigma::from_coo(&coo, 2, 8).unwrap();
        assert!(windowed.padding() < unsorted.padding());
        assert!(global.padding() <= windowed.padding());
    }

    #[test]
    fn sigma_equal_c_matches_plain_sell_padding() {
        let coo = ragged();
        let scs = SellCSigma::from_coo(&coo, 2, 2).unwrap();
        let sell = Sell::from_coo(&coo, 2).unwrap();
        assert_eq!(scs.padding(), sell.padding());
    }

    #[test]
    fn permutation_stays_within_windows() {
        let m = SellCSigma::from_coo(&ragged(), 2, 4).unwrap();
        for (pos, &orig) in m.permutation().iter().enumerate() {
            assert_eq!(pos / 4, orig / 4, "row {orig} left its σ-window");
        }
    }

    #[test]
    fn get_respects_permutation() {
        let coo = ragged();
        let m = SellCSigma::from_coo(&coo, 2, 8).unwrap();
        for t in coo.iter() {
            assert_eq!(m.get(t.row, t.col), t.val);
        }
    }
}
