//! ELLPACK (ELL) format.

use crate::{check_spmv_operand, Coo, FormatKind, Matrix, Scalar, SparseError, Triplet};

/// Sentinel column index marking a padding slot.
pub const PAD: usize = usize::MAX;

/// ELLPACK sparse matrix: every row compressed to the same width with
/// explicit padding.
///
/// §2 of the paper: "non-zero elements are extracted similarly to those of
/// the LIL format, with their column indices and their values. However, they
/// are stored [...] with the addition of explicit zero paddings to hold the
/// data for the longest row. This format is ideal for SIMD units since the
/// widths of all values and indices are the same."
///
/// The natural (lossless) width is the longest row's population; the paper's
/// hardware fixes the decompressor's compute width at six
/// ([`Ell::PAPER_HW_WIDTH`]) and notes that capping the *format* width only
/// changes FPGA resource usage, not performance, because the copy loop is
/// fully unrolled (§5.2, Listing 5).
///
/// Padding slots carry the sentinel index [`PAD`] and a zero value; they do
/// not count toward [`Matrix::nnz`] but they *are* transferred, which is why
/// ELL's bandwidth utilization degrades on ragged matrices (§6.3).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Ell<T> {
    nrows: usize,
    ncols: usize,
    width: usize,
    /// `indices[r * width + s]`: column of slot `s` of row `r`, or [`PAD`].
    indices: Vec<usize>,
    /// `values[r * width + s]`: value of slot `s` of row `r` (zero when
    /// padded).
    values: Vec<T>,
    nnz: usize,
}

impl<T: Scalar> Ell<T> {
    /// The compute width the paper's HLS decompressor is built for ("In
    /// Copernicus, we set this width to six").
    pub const PAPER_HW_WIDTH: usize = 6;

    /// Builds an ELL matrix whose width is the longest row's population
    /// (lossless for any input).
    pub fn from_coo_natural(coo: &Coo<T>) -> Self {
        let csr = crate::Csr::from(coo);
        let width = csr.max_row_nnz();
        Self::from_csr_with_width(&csr, width).expect("natural width always fits")
    }

    /// Builds an ELL matrix with an explicit width.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] if any row holds more than
    /// `width` entries — such matrices need [`crate::Sell`] or a hybrid
    /// ELL+COO split (§2 mentions ELL+COO exactly for this case).
    pub fn from_coo_with_width(coo: &Coo<T>, width: usize) -> Result<Self, SparseError> {
        Self::from_csr_with_width(&crate::Csr::from(coo), width)
    }

    fn from_csr_with_width(csr: &crate::Csr<T>, width: usize) -> Result<Self, SparseError> {
        let nrows = csr.nrows();
        let overfull = (0..nrows).find(|&r| csr.row_nnz(r) > width);
        if let Some(r) = overfull {
            return Err(SparseError::InvalidStructure(format!(
                "row {r} holds {} entries, more than the ELL width {width}",
                csr.row_nnz(r)
            )));
        }
        let mut indices = vec![PAD; nrows * width];
        let mut values = vec![T::ZERO; nrows * width];
        for r in 0..nrows {
            for (s, (c, v)) in csr.row_entries(r).enumerate() {
                indices[r * width + s] = c;
                values[r * width + s] = v;
            }
        }
        Ok(Ell {
            nrows,
            ncols: csr.ncols(),
            width,
            indices,
            values,
            nnz: csr.nnz(),
        })
    }

    /// Rebuilds this matrix in place from `coo` at the natural width,
    /// reusing the slot arrays (and the caller's triplet scratch) —
    /// exactly the matrix [`Ell::from_coo_natural`] builds.
    ///
    /// Duplicate-free, zero-free inputs rebuild without allocating once
    /// capacities are warm; anything else falls back to the allocating
    /// conversion so the CSR merge's float summation order is untouched.
    pub fn assign_from_coo_natural(&mut self, coo: &Coo<T>, tmp: &mut Vec<Triplet<T>>) {
        tmp.clear();
        tmp.extend(coo.iter().copied());
        tmp.sort_unstable_by_key(|t| (t.row, t.col));
        let clean = tmp
            .windows(2)
            .all(|w| (w[0].row, w[0].col) < (w[1].row, w[1].col))
            && tmp.iter().all(|t| !t.val.is_zero());
        if !clean {
            *self = Ell::from_coo_natural(coo);
            return;
        }
        self.nrows = coo.nrows();
        self.ncols = coo.ncols();
        self.nnz = tmp.len();
        // Natural width = the longest row's population.
        let mut width = 0usize;
        let mut run = 0usize;
        let mut last_row = usize::MAX;
        for t in tmp.iter() {
            run = if t.row == last_row { run + 1 } else { 1 };
            last_row = t.row;
            width = width.max(run);
        }
        self.width = width;
        self.indices.clear();
        self.indices.resize(self.nrows * width, PAD);
        self.values.clear();
        self.values.resize(self.nrows * width, T::ZERO);
        let mut slot = 0usize;
        last_row = usize::MAX;
        for t in tmp.iter() {
            slot = if t.row == last_row { slot + 1 } else { 0 };
            last_row = t.row;
            self.indices[t.row * width + slot] = t.col;
            self.values[t.row * width + slot] = t.val;
        }
    }

    /// The fixed row width (number of slots per row, including padding).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of padding slots across the whole matrix.
    pub fn padding(&self) -> usize {
        self.nrows * self.width - self.nnz
    }

    /// Iterates over the occupied `(col, value)` slots of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= nrows()`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        assert!(r < self.nrows, "row {r} out of bounds");
        let range = r * self.width..(r + 1) * self.width;
        self.indices[range.clone()]
            .iter()
            .zip(&self.values[range])
            .filter(|&(&c, _)| c != PAD)
            .map(|(&c, &v)| (c, v))
    }

    /// The raw slot arrays `(indices, values)`, row-major with width
    /// [`Ell::width`] — exactly what the hardware streams.
    pub fn raw_slots(&self) -> (&[usize], &[T]) {
        (&self.indices, &self.values)
    }

    /// Total slots transferred (`nrows · width`), including padding.
    pub fn stored_slots(&self) -> usize {
        self.indices.len()
    }
}

impl<T: Scalar> Matrix<T> for Ell<T> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn get(&self, row: usize, col: usize) -> T {
        assert!(
            row < self.nrows && col < self.ncols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        self.row_entries(row)
            .find(|&(c, _)| c == col)
            .map(|(_, v)| v)
            .unwrap_or(T::ZERO)
    }

    fn triplets(&self) -> Vec<Triplet<T>> {
        let mut out = Vec::with_capacity(self.nnz);
        for r in 0..self.nrows {
            for (c, v) in self.row_entries(r) {
                out.push(Triplet::new(r, c, v));
            }
        }
        out
    }

    fn spmv(&self, x: &[T]) -> Result<Vec<T>, SparseError> {
        check_spmv_operand(self, x)?;
        let mut y = vec![T::ZERO; self.nrows];
        for (r, yr) in y.iter_mut().enumerate() {
            // The SIMD-friendly schedule: all slots of the row, padding
            // included, multiply in lockstep (padding contributes zero).
            let range = r * self.width..(r + 1) * self.width;
            *yr = self.indices[range.clone()]
                .iter()
                .zip(&self.values[range])
                .map(|(&c, &v)| if c == PAD { T::ZERO } else { v * x[c] })
                .sum();
        }
        Ok(y)
    }

    fn kind(&self) -> FormatKind {
        FormatKind::Ell
    }
}

impl<T: Scalar> From<&Coo<T>> for Ell<T> {
    /// Converts at the natural (lossless) width.
    fn from(coo: &Coo<T>) -> Self {
        Ell::from_coo_natural(coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo<f32> {
        // 1 2 3
        // 0 0 0
        // 4 0 0
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 1, 2.0).unwrap();
        coo.push(0, 2, 3.0).unwrap();
        coo.push(2, 0, 4.0).unwrap();
        coo
    }

    #[test]
    fn natural_width_is_longest_row() {
        let m = Ell::from(&sample());
        assert_eq!(m.width(), 3);
        assert_eq!(m.stored_slots(), 9);
        assert_eq!(m.padding(), 5);
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn explicit_width_validates() {
        let coo = sample();
        assert!(Ell::from_coo_with_width(&coo, 3).is_ok());
        assert!(Ell::from_coo_with_width(&coo, 6).is_ok());
        assert!(matches!(
            Ell::from_coo_with_width(&coo, 2),
            Err(SparseError::InvalidStructure(_))
        ));
    }

    #[test]
    fn padding_slots_have_sentinels() {
        let m = Ell::from(&sample());
        let (idx, vals) = m.raw_slots();
        // Row 1 is empty: all three slots padded.
        assert_eq!(&idx[3..6], &[PAD, PAD, PAD]);
        assert_eq!(&vals[3..6], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn get_and_round_trip() {
        let coo = sample();
        let m = Ell::from(&coo);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert!(coo.to_dense().structurally_eq(&m));
    }

    #[test]
    fn spmv_matches_dense() {
        let coo = sample();
        let m = Ell::from(&coo);
        let x = [1.0, 10.0, 100.0];
        assert_eq!(m.spmv(&x).unwrap(), coo.to_dense().spmv(&x).unwrap());
    }

    #[test]
    fn wider_than_needed_width_still_round_trips() {
        let coo = sample();
        let m = Ell::from_coo_with_width(&coo, 5).unwrap();
        assert_eq!(m.width(), 5);
        assert!(coo.to_dense().structurally_eq(&m));
        let x = [2.0, 3.0, 4.0];
        assert_eq!(m.spmv(&x).unwrap(), coo.to_dense().spmv(&x).unwrap());
    }

    #[test]
    fn empty_matrix_has_zero_width() {
        let coo = Coo::<f32>::new(4, 4);
        let m = Ell::from(&coo);
        assert_eq!(m.width(), 0);
        assert_eq!(m.spmv(&[0.0; 4]).unwrap(), vec![0.0; 4]);
    }
}
