//! Property-based tests of the application kernels.

use copernicus_solvers::{
    bfs_levels, conjugate_gradient, connected_components, pagerank, sparse_mlp_forward,
    PageRankConfig, SolveOptions, SparseLayer,
};
use proptest::prelude::*;
use sparsemat::{ops, Coo, Csr, Matrix, Triplet};

/// Strategy: a random sparse pattern as a COO matrix.
fn pattern(n: usize, max_entries: usize) -> impl Strategy<Value = Coo<f32>> {
    proptest::collection::btree_map(0..n * n, 1i32..=5, 0..=max_entries).prop_map(move |map| {
        let triplets = map
            .into_iter()
            .map(|(cell, v)| Triplet::new(cell / n, cell % n, v as f32))
            .collect();
        Coo::from_triplets(n, n, triplets).expect("in range")
    })
}

/// Builds a symmetric positive-definite matrix `AᵀA + n·I` from a random
/// pattern.
fn spd_from(coo: &Coo<f32>) -> Csr<f32> {
    let n = coo.nrows();
    let a = Csr::from(coo);
    let ata = ops::spmm(&a.transpose(), &a).expect("square");
    let mut shifted = ata.to_coo();
    for i in 0..n {
        shifted.push(i, i, n as f32).expect("in range");
    }
    shifted.compress();
    Csr::from(&shifted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cg_solves_random_spd_systems(coo in pattern(12, 30), seed in 0u64..50) {
        let a = spd_from(&coo);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (((i as u64 + seed) % 7) as f64) - 3.0).collect();
        let opts = SolveOptions { tolerance: 1e-6, max_iterations: 5000 };
        let (x, stats) = conjugate_gradient(&a, &b, opts).unwrap();
        // Residual check through an independent f64 densification.
        let ad = a.to_dense();
        let mut res = 0.0f64;
        for i in 0..n {
            let axi: f64 = (0..n).map(|j| ad[(i, j)] as f64 * x[j]).sum();
            res += (b[i] - axi).powi(2);
        }
        prop_assert!(res.sqrt() < 1e-2, "residual {}", res.sqrt());
        prop_assert!(stats.iterations <= 5000);
    }

    #[test]
    fn pagerank_mass_and_positivity(coo in pattern(16, 40)) {
        prop_assume!(coo.nnz() > 0);
        let (rank, _) = pagerank(&Csr::from(&coo), PageRankConfig::default()).unwrap();
        let mass: f64 = rank.iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-8, "mass {mass}");
        prop_assert!(rank.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn bfs_levels_satisfy_edge_relaxation(coo in pattern(14, 40)) {
        let a = Csr::from(&coo);
        let levels = bfs_levels(&a, 0).unwrap();
        prop_assert_eq!(levels[0], 0);
        // Along every edge u -> v: level(v) <= level(u) + 1 when u is
        // reachable.
        for t in a.triplets() {
            if levels[t.row] != usize::MAX {
                prop_assert!(
                    levels[t.col] <= levels[t.row] + 1,
                    "edge ({}, {}) violates relaxation",
                    t.row,
                    t.col
                );
            }
        }
    }

    #[test]
    fn components_are_consistent_with_edges(coo in pattern(14, 30)) {
        let a = Csr::from(&coo);
        let labels = connected_components(&a).unwrap();
        // Endpoints of every (symmetrized) edge share a label, and each
        // label is the smallest vertex id in its component.
        for t in a.triplets() {
            prop_assert_eq!(labels[t.row], labels[t.col]);
        }
        for (v, &l) in labels.iter().enumerate() {
            prop_assert!(l <= v);
            prop_assert_eq!(labels[l], l, "label {} is not a root", l);
        }
    }

    #[test]
    fn mlp_forward_is_deterministic_and_nonnegative_with_relu(
        coo in pattern(10, 25),
        x in proptest::collection::vec(-4.0f32..4.0, 10),
    ) {
        let layer = SparseLayer::new(&coo, vec![0.25; 10], true).unwrap();
        let a = sparse_mlp_forward(std::slice::from_ref(&layer), &x).unwrap();
        let b = sparse_mlp_forward(&[layer], &x).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|&v| v >= 0.0));
    }
}
