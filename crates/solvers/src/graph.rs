//! Graph analytics as SpMV — §3.3: "Graph algorithms, such as
//! breadth-first search, single-source shortest path, and PageRank [...]
//! can be implemented as a sparse matrix-vector operation."

use crate::SolverError;
use sparsemat::{Coo, Matrix, Scalar};

/// PageRank configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor (0.85 in the original formulation).
    pub damping: f64,
    /// Stop when the L1 change between sweeps drops below this.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            tolerance: 1e-10,
            max_iterations: 200,
        }
    }
}

/// PageRank over a directed adjacency matrix (`A[i][j] != 0` means an edge
/// `i -> j`; weights are ignored, only the pattern matters).
///
/// Returns the rank vector (sums to 1) and the sweeps performed.
///
/// # Errors
///
/// [`SolverError::Shape`] for non-square adjacency, and
/// [`SolverError::NoConvergence`] past the budget.
pub fn pagerank<T: Scalar, M: Matrix<T>>(
    adjacency: &M,
    cfg: PageRankConfig,
) -> Result<(Vec<f64>, usize), SolverError> {
    if adjacency.nrows() != adjacency.ncols() {
        return Err(SolverError::Shape(sparsemat::SparseError::ShapeMismatch {
            expected: (adjacency.nrows(), adjacency.nrows()),
            found: (adjacency.nrows(), adjacency.ncols()),
        }));
    }
    let n = adjacency.nrows();
    if n == 0 {
        return Ok((Vec::new(), 0));
    }
    // Column-stochastic transition structure: M[j][i] = 1/outdeg(i).
    let triplets = adjacency.triplets();
    let mut outdeg = vec![0usize; n];
    for t in &triplets {
        outdeg[t.row] += 1;
    }
    // Build the transition in f64 so convergence is not limited by the
    // adjacency's element precision.
    let mut transition = Coo::<f64>::with_capacity(n, n, triplets.len());
    for t in &triplets {
        transition
            .push(t.col, t.row, 1.0 / outdeg[t.row] as f64)
            .expect("within shape");
    }
    let transition = sparsemat::Csr::from(&transition);

    let d = cfg.damping;
    let mut rank = vec![1.0 / n as f64; n];
    for sweep in 0..cfg.max_iterations {
        let mv = transition.spmv(&rank)?;
        let dangling: f64 = rank
            .iter()
            .enumerate()
            .filter(|&(i, _)| outdeg[i] == 0)
            .map(|(_, r)| r)
            .sum();
        let base = (1.0 - d) / n as f64 + d * dangling / n as f64;
        let next: Vec<f64> = mv.iter().map(|&v| base + d * v).collect();
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
        if delta < cfg.tolerance {
            return Ok((rank, sweep + 1));
        }
    }
    Err(SolverError::NoConvergence {
        iterations: cfg.max_iterations,
        residual: f64::NAN,
    })
}

/// BFS levels from a source vertex over an adjacency matrix, computed as
/// repeated boolean-semiring SpMV (frontier expansion). Unreachable
/// vertices get `usize::MAX`.
///
/// # Errors
///
/// [`SolverError::Shape`] for non-square adjacency or an out-of-range
/// source.
pub fn bfs_levels<T: Scalar, M: Matrix<T>>(
    adjacency: &M,
    source: usize,
) -> Result<Vec<usize>, SolverError> {
    let n = adjacency.nrows();
    if adjacency.ncols() != n || source >= n {
        return Err(SolverError::Shape(
            sparsemat::SparseError::IndexOutOfBounds {
                index: (source, 0),
                shape: (n, adjacency.ncols()),
            },
        ));
    }
    // Row-major neighbour lists once (the vertex-centric phase-1 of §3.3).
    let mut neighbours: Vec<Vec<usize>> = vec![Vec::new(); n];
    for t in adjacency.triplets() {
        neighbours[t.row].push(t.col);
    }
    let mut levels = vec![usize::MAX; n];
    levels[source] = 0;
    let mut frontier = vec![source];
    let mut depth = 0usize;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        // Frontier expansion = SpMV of the adjacency with the frontier's
        // indicator vector under the (OR, AND) semiring.
        for &u in &frontier {
            for &v in &neighbours[u] {
                if levels[v] == usize::MAX {
                    levels[v] = depth;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    Ok(levels)
}

/// Connected components of an *undirected* graph (the pattern is
/// symmetrized internally), via label propagation — each sweep is an SpMV
/// under the (min, select) semiring. Returns the component label per
/// vertex (the smallest vertex index in the component).
///
/// # Errors
///
/// [`SolverError::Shape`] for non-square adjacency.
pub fn connected_components<T: Scalar, M: Matrix<T>>(
    adjacency: &M,
) -> Result<Vec<usize>, SolverError> {
    let n = adjacency.nrows();
    if adjacency.ncols() != n {
        return Err(SolverError::Shape(sparsemat::SparseError::ShapeMismatch {
            expected: (n, n),
            found: (n, adjacency.ncols()),
        }));
    }
    let mut neighbours: Vec<Vec<usize>> = vec![Vec::new(); n];
    for t in adjacency.triplets() {
        neighbours[t.row].push(t.col);
        neighbours[t.col].push(t.row);
    }
    let mut labels: Vec<usize> = (0..n).collect();
    loop {
        let mut changed = false;
        for u in 0..n {
            let mut best = labels[u];
            for &v in &neighbours[u] {
                best = best.min(labels[v]);
            }
            if best < labels[u] {
                labels[u] = best;
                changed = true;
            }
        }
        if !changed {
            return Ok(labels);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::{Coo, Csr};

    /// A two-triangle graph bridged by one edge: 0-1-2 and 3-4-5.
    fn two_clusters() -> Csr<f32> {
        let mut coo = Coo::new(6, 6);
        for &(a, b) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            coo.push(a, b, 1.0).unwrap();
            coo.push(b, a, 1.0).unwrap();
        }
        Csr::from(&coo)
    }

    #[test]
    fn pagerank_sums_to_one_and_converges() {
        let g = two_clusters();
        let (rank, sweeps) = pagerank(&g, PageRankConfig::default()).unwrap();
        let mass: f64 = rank.iter().sum();
        assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
        assert!(sweeps > 1);
        assert!(rank.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn pagerank_ranks_hubs_higher() {
        // A star: everything points at vertex 0.
        let mut coo = Coo::<f32>::new(5, 5);
        for i in 1..5 {
            coo.push(i, 0, 1.0).unwrap();
        }
        // Give 0 an outgoing edge so it is not dangling-only.
        coo.push(0, 1, 1.0).unwrap();
        let (rank, _) = pagerank(&Csr::from(&coo), PageRankConfig::default()).unwrap();
        for i in 2..5 {
            assert!(rank[0] > rank[i], "hub not ranked highest");
        }
    }

    #[test]
    fn pagerank_handles_dangling_nodes() {
        // 0 -> 1, 1 has no outgoing edges.
        let mut coo = Coo::<f32>::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        let (rank, _) = pagerank(&Csr::from(&coo), PageRankConfig::default()).unwrap();
        assert!((rank.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(rank[1] > rank[0]);
    }

    #[test]
    fn bfs_levels_match_hand_computation() {
        let g = two_clusters();
        let levels = bfs_levels(&g, 0).unwrap();
        assert_eq!(levels[0], 0);
        assert_eq!(levels[1], 1);
        assert_eq!(levels[2], 1);
        assert_eq!(levels[3], 2);
        assert_eq!(levels[4], 3);
        assert_eq!(levels[5], 3);
    }

    #[test]
    fn bfs_marks_unreachable_vertices() {
        let mut coo = Coo::<f32>::new(4, 4);
        coo.push(0, 1, 1.0).unwrap();
        let levels = bfs_levels(&Csr::from(&coo), 0).unwrap();
        assert_eq!(levels, vec![0, 1, usize::MAX, usize::MAX]);
    }

    #[test]
    fn bfs_rejects_bad_source() {
        assert!(bfs_levels(&two_clusters(), 99).is_err());
    }

    #[test]
    fn components_find_separate_islands() {
        let mut coo = Coo::<f32>::new(5, 5);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(3, 4, 1.0).unwrap();
        let labels = connected_components(&Csr::from(&coo)).unwrap();
        assert_eq!(labels, vec![0, 0, 2, 3, 3]);
    }

    #[test]
    fn components_of_connected_graph_are_uniform() {
        let labels = connected_components(&two_clusters()).unwrap();
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn empty_graph_works() {
        let g = Csr::<f32>::new(0, 0);
        assert_eq!(pagerank(&g, PageRankConfig::default()).unwrap().0.len(), 0);
        assert_eq!(connected_components(&g).unwrap().len(), 0);
    }
}
