//! Sparse neural-network inference — §3.3: "Machine learning applications
//! consist of SpMV or sparse matrix-matrix multiplication, both of which
//! rely on the same underlying dot-product engine."
//!
//! A pruned fully-connected layer is a sparse weight matrix; a forward
//! pass is `relu(W·x + b)` per layer, i.e. exactly the SpMV the Copernicus
//! platform accelerates.

use crate::SolverError;
use sparsemat::{AnyMatrix, Coo, FormatKind, Matrix};

/// One sparse fully-connected layer: pruned weights, a dense bias, and a
/// flag for the output nonlinearity.
#[derive(Debug, Clone)]
pub struct SparseLayer {
    weights: AnyMatrix<f32>,
    bias: Vec<f32>,
    relu: bool,
}

impl SparseLayer {
    /// Builds a layer from pruned weights (`out_features × in_features`),
    /// a bias of length `out_features`, and the activation choice.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Shape`] when the bias length disagrees with
    /// the weight matrix height.
    pub fn new(weights: &Coo<f32>, bias: Vec<f32>, relu: bool) -> Result<Self, SolverError> {
        Self::with_format(weights, bias, relu, FormatKind::Csr)
    }

    /// Like [`SparseLayer::new`] but storing the weights in a chosen format
    /// — the knob the Copernicus characterization turns.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Shape`] on a bias length mismatch.
    pub fn with_format(
        weights: &Coo<f32>,
        bias: Vec<f32>,
        relu: bool,
        format: FormatKind,
    ) -> Result<Self, SolverError> {
        if bias.len() != weights.nrows() {
            return Err(SolverError::Shape(sparsemat::SparseError::ShapeMismatch {
                expected: (weights.nrows(), 1),
                found: (bias.len(), 1),
            }));
        }
        Ok(SparseLayer {
            weights: AnyMatrix::encode(weights, format),
            bias,
            relu,
        })
    }

    /// Input width the layer expects.
    pub fn in_features(&self) -> usize {
        self.weights.ncols()
    }

    /// Output width the layer produces.
    pub fn out_features(&self) -> usize {
        self.weights.nrows()
    }

    /// Fraction of weights pruned away.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.weights.density()
    }

    /// The stored weight matrix.
    pub fn weights(&self) -> &AnyMatrix<f32> {
        &self.weights
    }

    /// One forward step: `act(W·x + b)`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Shape`] when `x.len() != in_features()`.
    pub fn forward(&self, x: &[f32]) -> Result<Vec<f32>, SolverError> {
        let mut y = self.weights.spmv(x)?;
        for (yi, bi) in y.iter_mut().zip(&self.bias) {
            *yi += bi;
        }
        if self.relu {
            relu(&mut y);
        }
        Ok(y)
    }
}

/// In-place rectified linear unit.
pub fn relu(v: &mut [f32]) {
    for x in v {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

/// Runs a full multi-layer forward pass.
///
/// # Errors
///
/// Returns [`SolverError::Shape`] when consecutive layers disagree on
/// width or the input does not match the first layer.
pub fn sparse_mlp_forward(layers: &[SparseLayer], input: &[f32]) -> Result<Vec<f32>, SolverError> {
    let mut x = input.to_vec();
    for layer in layers {
        x = layer.forward(&x)?;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use copernicus_workloads::{random, seeded_rng};

    fn layer(out: usize, inp: usize, density: f64, relu: bool, seed: u64) -> SparseLayer {
        let w = random::uniform(out, inp, density, &mut seeded_rng(seed));
        SparseLayer::new(&w, vec![0.5; out], relu).unwrap()
    }

    #[test]
    fn forward_matches_manual_computation() {
        let mut w = Coo::<f32>::new(2, 3);
        w.push(0, 0, 2.0).unwrap();
        w.push(0, 2, -1.0).unwrap();
        w.push(1, 1, 3.0).unwrap();
        let l = SparseLayer::new(&w, vec![1.0, -10.0], true).unwrap();
        // y = relu(W x + b), x = [1, 2, 3]
        // row0: 2*1 - 1*3 + 1 = 0; row1: 3*2 - 10 = -4 -> relu -> 0.
        assert_eq!(l.forward(&[1.0, 2.0, 3.0]).unwrap(), vec![0.0, 0.0]);
        // Without relu, the raw affine values come through.
        let l = SparseLayer::new(&w, vec![1.0, -10.0], false).unwrap();
        assert_eq!(l.forward(&[1.0, 2.0, 3.0]).unwrap(), vec![0.0, -4.0]);
    }

    #[test]
    fn relu_clamps_negatives_only() {
        let mut v = vec![-1.0f32, 0.0, 2.5];
        relu(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 2.5]);
    }

    #[test]
    fn layer_metadata() {
        let l = layer(8, 16, 0.25, true, 1);
        assert_eq!(l.in_features(), 16);
        assert_eq!(l.out_features(), 8);
        assert!((l.sparsity() - 0.75).abs() < 0.01);
    }

    #[test]
    fn format_choice_never_changes_the_output() {
        let w = random::uniform(12, 20, 0.3, &mut seeded_rng(2));
        let bias: Vec<f32> = (0..12).map(|i| i as f32 * 0.1).collect();
        let x: Vec<f32> = (0..20).map(|i| ((i % 5) as f32) - 2.0).collect();
        let reference = SparseLayer::with_format(&w, bias.clone(), true, FormatKind::Dense)
            .unwrap()
            .forward(&x)
            .unwrap();
        for kind in FormatKind::ALL {
            let l = SparseLayer::with_format(&w, bias.clone(), true, kind).unwrap();
            assert_eq!(l.forward(&x).unwrap(), reference, "{kind}");
        }
    }

    #[test]
    fn mlp_pipeline_composes_layers() {
        let layers = vec![
            layer(16, 24, 0.3, true, 3),
            layer(8, 16, 0.4, true, 4),
            layer(4, 8, 0.5, false, 5),
        ];
        let x = vec![1.0f32; 24];
        let y = sparse_mlp_forward(&layers, &x).unwrap();
        assert_eq!(y.len(), 4);
        // Composition equals running the layers by hand.
        let manual = layers[2]
            .forward(&layers[1].forward(&layers[0].forward(&x).unwrap()).unwrap())
            .unwrap();
        assert_eq!(y, manual);
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let w = Coo::<f32>::new(4, 6);
        assert!(SparseLayer::new(&w, vec![0.0; 3], true).is_err());
        let l = layer(4, 6, 0.5, true, 6);
        assert!(l.forward(&[0.0; 5]).is_err());
    }
}
