//! Iterative solvers for sparse linear systems — §3.3: "systems of linear
//! equations with a large symmetric positive-definite matrix A can be
//! solved by iterative algorithms such as conjugate gradient (CG) methods.
//! [...] the key sparse kernel is SpMV."
//!
//! All solvers work in `f64` internally regardless of the matrix element
//! type, which keeps convergence behaviour stable for `f32` workloads.

use crate::SolverError;
use sparsemat::{Matrix, Scalar};

/// Convergence options shared by the iterative solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Stop when the 2-norm of the residual drops below this.
    pub tolerance: f64,
    /// Give up after this many iterations.
    pub max_iterations: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tolerance: 1e-8,
            max_iterations: 10_000,
        }
    }
}

/// Iteration statistics returned next to a solution.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IterStats {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
    /// SpMV invocations performed (the quantity the paper's accelerator
    /// would execute).
    pub spmv_count: usize,
}

/// Computes `A·x` in `f64` through the format's native SpMV.
fn spmv_f64<T: Scalar, M: Matrix<T>>(a: &M, x: &[f64]) -> Result<Vec<f64>, SolverError> {
    // Round-trip through the matrix element type: exact for f64, and the
    // appropriate precision for f32 systems.
    let xt: Vec<T> = x.iter().map(|&v| T::from_f64(v)).collect();
    let y = a.spmv(&xt)?;
    Ok(y.into_iter().map(|v| v.to_f64()).collect())
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

fn check_square_system<T: Scalar, M: Matrix<T>>(a: &M, b: &[f64]) -> Result<(), SolverError> {
    if a.nrows() != a.ncols() || b.len() != a.nrows() {
        return Err(SolverError::Shape(sparsemat::SparseError::ShapeMismatch {
            expected: (a.nrows(), a.nrows()),
            found: (a.ncols(), b.len()),
        }));
    }
    Ok(())
}

/// Conjugate gradient for symmetric positive-definite `A`.
///
/// # Errors
///
/// [`SolverError::Shape`] for non-square systems,
/// [`SolverError::Breakdown`] when `pᵀAp` vanishes (A not SPD), and
/// [`SolverError::NoConvergence`] past the iteration budget.
pub fn conjugate_gradient<T: Scalar, M: Matrix<T>>(
    a: &M,
    b: &[f64],
    opts: SolveOptions,
) -> Result<(Vec<f64>, IterStats), SolverError> {
    check_square_system(a, b)?;
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rr = dot(&r, &r);
    let mut spmv_count = 0;
    #[allow(clippy::explicit_counter_loop)] // counts SpMV applications, not iterations
    for k in 0..opts.max_iterations {
        let res = rr.sqrt();
        if res < opts.tolerance {
            return Ok((
                x,
                IterStats {
                    iterations: k,
                    residual: res,
                    spmv_count,
                },
            ));
        }
        let ap = spmv_f64(a, &p)?;
        spmv_count += 1;
        let pap = dot(&p, &ap);
        if pap.abs() < f64::MIN_POSITIVE {
            return Err(SolverError::Breakdown("p'Ap = 0 (matrix not SPD?)"));
        }
        let alpha = rr / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rr_next = dot(&r, &r);
        let beta = rr_next / rr;
        rr = rr_next;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    Err(SolverError::NoConvergence {
        iterations: opts.max_iterations,
        residual: rr.sqrt(),
    })
}

/// Jacobi-preconditioned conjugate gradient: CG on `M⁻¹A` with
/// `M = diag(A)`, which typically cuts iterations on stiff SPD systems
/// (strongly varying diagonal) at one extra vector scale per step.
///
/// # Errors
///
/// [`SolverError::Precondition`] on a zero diagonal entry, plus everything
/// [`conjugate_gradient`] can return.
pub fn preconditioned_cg<T: Scalar, M: Matrix<T>>(
    a: &M,
    b: &[f64],
    opts: SolveOptions,
) -> Result<(Vec<f64>, IterStats), SolverError> {
    check_square_system(a, b)?;
    let n = b.len();
    let diag: Vec<f64> = (0..n).map(|i| a.get(i, i).to_f64()).collect();
    if diag.contains(&0.0) {
        return Err(SolverError::Precondition("PCG needs a non-zero diagonal"));
    }
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z: Vec<f64> = r.iter().zip(&diag).map(|(ri, di)| ri / di).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut spmv_count = 0;
    #[allow(clippy::explicit_counter_loop)] // counts SpMV applications, not iterations
    for k in 0..opts.max_iterations {
        let res = norm2(&r);
        if res < opts.tolerance {
            return Ok((
                x,
                IterStats {
                    iterations: k,
                    residual: res,
                    spmv_count,
                },
            ));
        }
        let ap = spmv_f64(a, &p)?;
        spmv_count += 1;
        let pap = dot(&p, &ap);
        if pap.abs() < f64::MIN_POSITIVE {
            return Err(SolverError::Breakdown("p'Ap = 0 in PCG"));
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        for i in 0..n {
            z[i] = r[i] / diag[i];
        }
        let rz_next = dot(&r, &z);
        let beta = rz_next / rz;
        rz = rz_next;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    Err(SolverError::NoConvergence {
        iterations: opts.max_iterations,
        residual: norm2(&r),
    })
}

/// Power iteration: the dominant eigenvalue (by magnitude) and its
/// eigenvector, via repeated SpMV — the spectral sibling of PageRank.
///
/// Returns `(eigenvalue, unit eigenvector, iterations)`.
///
/// # Errors
///
/// [`SolverError::Shape`] for non-square input,
/// [`SolverError::Breakdown`] when the iterate collapses to zero, and
/// [`SolverError::NoConvergence`] past the budget.
pub fn power_iteration<T: Scalar, M: Matrix<T>>(
    a: &M,
    opts: SolveOptions,
) -> Result<(f64, Vec<f64>, usize), SolverError> {
    if a.nrows() != a.ncols() {
        return Err(SolverError::Shape(sparsemat::SparseError::ShapeMismatch {
            expected: (a.nrows(), a.nrows()),
            found: (a.nrows(), a.ncols()),
        }));
    }
    let n = a.nrows();
    if n == 0 {
        return Ok((0.0, Vec::new(), 0));
    }
    // Deterministic, not-axis-aligned start.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 % 3.0) * 0.25).collect();
    let norm = norm2(&v);
    for x in &mut v {
        *x /= norm;
    }
    let mut lambda = 0.0f64;
    for k in 0..opts.max_iterations {
        let av = spmv_f64(a, &v)?;
        let next_lambda = dot(&v, &av);
        let norm = norm2(&av);
        if norm < f64::MIN_POSITIVE {
            return Err(SolverError::Breakdown("iterate collapsed to zero"));
        }
        let next: Vec<f64> = av.iter().map(|x| x / norm).collect();
        let delta = (next_lambda - lambda).abs();
        v = next;
        lambda = next_lambda;
        if k > 0 && delta < opts.tolerance * lambda.abs().max(1.0) {
            return Ok((lambda, v, k + 1));
        }
    }
    Err(SolverError::NoConvergence {
        iterations: opts.max_iterations,
        residual: f64::NAN,
    })
}

/// BiCGSTAB for general (non-symmetric) `A`.
///
/// # Errors
///
/// [`SolverError::Shape`], [`SolverError::Breakdown`] on `ρ = 0` or
/// `ω = 0`, and [`SolverError::NoConvergence`] past the budget.
pub fn bicgstab<T: Scalar, M: Matrix<T>>(
    a: &M,
    b: &[f64],
    opts: SolveOptions,
) -> Result<(Vec<f64>, IterStats), SolverError> {
    check_square_system(a, b)?;
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let r0 = r.clone();
    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut spmv_count = 0;
    #[allow(clippy::explicit_counter_loop)] // counts SpMV applications, not iterations
    for k in 0..opts.max_iterations {
        let res = norm2(&r);
        if res < opts.tolerance {
            return Ok((
                x,
                IterStats {
                    iterations: k,
                    residual: res,
                    spmv_count,
                },
            ));
        }
        let rho_next = dot(&r0, &r);
        if rho_next.abs() < f64::MIN_POSITIVE {
            return Err(SolverError::Breakdown("rho = 0 in BiCGSTAB"));
        }
        let beta = (rho_next / rho) * (alpha / omega);
        rho = rho_next;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        v = spmv_f64(a, &p)?;
        spmv_count += 1;
        alpha = rho / dot(&r0, &v);
        let s: Vec<f64> = (0..n).map(|i| r[i] - alpha * v[i]).collect();
        if norm2(&s) < opts.tolerance {
            for i in 0..n {
                x[i] += alpha * p[i];
            }
            return Ok((
                x,
                IterStats {
                    iterations: k + 1,
                    residual: norm2(&s),
                    spmv_count,
                },
            ));
        }
        let t = spmv_f64(a, &s)?;
        spmv_count += 1;
        let tt = dot(&t, &t);
        if tt.abs() < f64::MIN_POSITIVE {
            return Err(SolverError::Breakdown("t't = 0 in BiCGSTAB"));
        }
        omega = dot(&t, &s) / tt;
        if omega.abs() < f64::MIN_POSITIVE {
            return Err(SolverError::Breakdown("omega = 0 in BiCGSTAB"));
        }
        for i in 0..n {
            x[i] += alpha * p[i] + omega * s[i];
            r[i] = s[i] - omega * t[i];
        }
    }
    Err(SolverError::NoConvergence {
        iterations: opts.max_iterations,
        residual: norm2(&r),
    })
}

/// Jacobi iteration (requires a non-zero diagonal; converges for strictly
/// diagonally dominant systems).
///
/// # Errors
///
/// [`SolverError::Precondition`] on a zero diagonal entry, plus the shape
/// and convergence errors of the other solvers.
pub fn jacobi<T: Scalar, M: Matrix<T>>(
    a: &M,
    b: &[f64],
    opts: SolveOptions,
) -> Result<(Vec<f64>, IterStats), SolverError> {
    check_square_system(a, b)?;
    let n = b.len();
    let diag: Vec<f64> = (0..n).map(|i| a.get(i, i).to_f64()).collect();
    if diag.contains(&0.0) {
        return Err(SolverError::Precondition(
            "Jacobi needs a non-zero diagonal",
        ));
    }
    let mut x = vec![0.0; n];
    let mut spmv_count = 0;
    #[allow(clippy::explicit_counter_loop)] // counts SpMV applications, not iterations
    for k in 0..opts.max_iterations {
        let ax = spmv_f64(a, &x)?;
        spmv_count += 1;
        let res = (0..n).map(|i| (b[i] - ax[i]).powi(2)).sum::<f64>().sqrt();
        if res < opts.tolerance {
            return Ok((
                x,
                IterStats {
                    iterations: k,
                    residual: res,
                    spmv_count,
                },
            ));
        }
        // x' = x + D^-1 (b - A x)
        for i in 0..n {
            x[i] += (b[i] - ax[i]) / diag[i];
        }
    }
    Err(SolverError::NoConvergence {
        iterations: opts.max_iterations,
        residual: f64::NAN,
    })
}

/// Gauss–Seidel iteration — the "symmetric Gauss-Seidel iteration used in
/// the CG algorithm" §3.3 points at. Requires a non-zero diagonal.
///
/// # Errors
///
/// Same conditions as [`jacobi`].
pub fn gauss_seidel<T: Scalar, M: Matrix<T>>(
    a: &M,
    b: &[f64],
    opts: SolveOptions,
) -> Result<(Vec<f64>, IterStats), SolverError> {
    check_square_system(a, b)?;
    let n = b.len();
    // Materialize rows once; Gauss–Seidel needs in-place sweeps.
    let triplets = a.triplets();
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    let mut diag = vec![0.0f64; n];
    for t in triplets {
        if t.row == t.col {
            diag[t.row] += t.val.to_f64();
        } else {
            rows[t.row].push((t.col, t.val.to_f64()));
        }
    }
    if diag.contains(&0.0) {
        return Err(SolverError::Precondition(
            "Gauss-Seidel needs a non-zero diagonal",
        ));
    }
    let mut x = vec![0.0; n];
    let mut spmv_count = 0;
    #[allow(clippy::explicit_counter_loop)] // counts SpMV applications, not iterations
    for k in 0..opts.max_iterations {
        // One forward sweep.
        for i in 0..n {
            let off: f64 = rows[i].iter().map(|&(j, v)| v * x[j]).sum();
            x[i] = (b[i] - off) / diag[i];
        }
        // Residual check through a real SpMV.
        let ax = spmv_f64(a, &x)?;
        spmv_count += 1;
        let res = (0..n).map(|i| (b[i] - ax[i]).powi(2)).sum::<f64>().sqrt();
        if res < opts.tolerance {
            return Ok((
                x,
                IterStats {
                    iterations: k + 1,
                    residual: res,
                    spmv_count,
                },
            ));
        }
    }
    Err(SolverError::NoConvergence {
        iterations: opts.max_iterations,
        residual: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use copernicus_workloads::stencil::laplacian_2d;
    use sparsemat::{Coo, Csr, Dia};

    fn poisson() -> (Csr<f32>, Vec<f64>) {
        let a = Csr::from(&laplacian_2d(8, 8));
        let b: Vec<f64> = (0..64).map(|i| ((i % 7) as f64) - 3.0).collect();
        (a, b)
    }

    fn residual<M: Matrix<f32>>(a: &M, x: &[f64], b: &[f64]) -> f64 {
        let ax = spmv_f64(a, x).unwrap();
        (0..b.len())
            .map(|i| (b[i] - ax[i]).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn cg_solves_poisson() {
        let (a, b) = poisson();
        let (x, stats) = conjugate_gradient(&a, &b, SolveOptions::default()).unwrap();
        // The operator is f32, so the achievable true residual is bounded
        // by single-precision round-off regardless of the f64 recurrences.
        assert!(
            residual(&a, &x, &b) < 1e-3,
            "residual {}",
            residual(&a, &x, &b)
        );
        assert!(stats.iterations > 0 && stats.iterations < 200);
        assert_eq!(stats.spmv_count, stats.iterations);
    }

    #[test]
    fn cg_agrees_across_formats() {
        // The same solve through DIA must match CSR bit-for-bit: both
        // formats' SpMV round to the same f32 kernel values.
        let (a, b) = poisson();
        let dia = Dia::from(&a.to_coo());
        let (x_csr, _) = conjugate_gradient(&a, &b, SolveOptions::default()).unwrap();
        let (x_dia, _) = conjugate_gradient(&dia, &b, SolveOptions::default()).unwrap();
        assert_eq!(x_csr, x_dia);
    }

    #[test]
    fn bicgstab_solves_nonsymmetric() {
        // A diagonally dominant non-symmetric system.
        let mut coo = Coo::<f32>::new(32, 32);
        for i in 0..32usize {
            coo.push(i, i, 5.0).unwrap();
            if i + 1 < 32 {
                coo.push(i, i + 1, -2.0).unwrap();
            }
            if i >= 3 {
                coo.push(i, i - 3, 1.0).unwrap();
            }
        }
        let a = Csr::from(&coo);
        let b: Vec<f64> = (0..32).map(|i| (i as f64).sin()).collect();
        let (x, stats) = bicgstab(&a, &b, SolveOptions::default()).unwrap();
        assert!(
            residual(&a, &x, &b) < 1e-3,
            "residual {}",
            residual(&a, &x, &b)
        );
        assert!(stats.spmv_count >= stats.iterations);
    }

    #[test]
    fn jacobi_and_gauss_seidel_solve_dominant_systems() {
        let (a, b) = poisson();
        let opts = SolveOptions {
            tolerance: 1e-4,
            max_iterations: 20_000,
        };
        let (xj, sj) = jacobi(&a, &b, opts).unwrap();
        let (xg, sg) = gauss_seidel(&a, &b, opts).unwrap();
        assert!(residual(&a, &xj, &b) < 1e-3);
        assert!(residual(&a, &xg, &b) < 1e-3);
        // Gauss–Seidel converges at least as fast as Jacobi on SPD systems.
        assert!(sg.iterations <= sj.iterations);
    }

    #[test]
    fn solvers_agree_on_the_solution() {
        let (a, b) = poisson();
        let opts = SolveOptions {
            tolerance: 1e-5,
            max_iterations: 50_000,
        };
        let (x_cg, _) = conjugate_gradient(&a, &b, opts).unwrap();
        let (x_bi, _) = bicgstab(&a, &b, opts).unwrap();
        let (x_gs, _) = gauss_seidel(&a, &b, opts).unwrap();
        for i in 0..b.len() {
            assert!((x_cg[i] - x_bi[i]).abs() < 1e-2, "cg vs bicgstab at {i}");
            assert!(
                (x_cg[i] - x_gs[i]).abs() < 1e-2,
                "cg vs gauss-seidel at {i}"
            );
        }
    }

    #[test]
    fn pcg_matches_cg_and_converges_no_slower_on_stiff_systems() {
        // A stiff diagonal: scale each row/col of the Poisson operator.
        let base = laplacian_2d(8, 8);
        let mut stiff = Coo::<f32>::new(64, 64);
        for t in base.iter() {
            let s = (1 + t.row % 7) as f32 * (1 + t.col % 7) as f32;
            stiff.push(t.row, t.col, t.val * s.sqrt()).unwrap();
        }
        let a = Csr::from(&stiff);
        // Symmetrize to keep SPD-ness: A + A' + shift.
        let sym = sparsemat::ops::add(&a, &a.transpose()).unwrap();
        let mut spd = sym.clone();
        for i in 0..64 {
            spd.push(i, i, 50.0).unwrap();
        }
        spd.compress();
        let a = Csr::from(&spd);
        let b: Vec<f64> = (0..64).map(|i| ((i % 5) as f64) - 2.0).collect();
        let opts = SolveOptions {
            tolerance: 1e-5,
            max_iterations: 10_000,
        };
        let (x_cg, s_cg) = conjugate_gradient(&a, &b, opts).unwrap();
        let (x_pcg, s_pcg) = preconditioned_cg(&a, &b, opts).unwrap();
        for i in 0..64 {
            assert!(
                (x_cg[i] - x_pcg[i]).abs() < 1e-2,
                "solutions diverge at {i}"
            );
        }
        assert!(
            s_pcg.iterations <= s_cg.iterations + 2,
            "PCG {} vs CG {}",
            s_pcg.iterations,
            s_cg.iterations
        );
    }

    #[test]
    fn pcg_rejects_zero_diagonal() {
        let mut coo = Coo::<f32>::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        assert!(matches!(
            preconditioned_cg(&Csr::from(&coo), &[1.0, 1.0], SolveOptions::default()),
            Err(SolverError::Precondition(_))
        ));
    }

    #[test]
    fn power_iteration_finds_the_dominant_eigenvalue() {
        // diag(1, 5, 3): dominant eigenvalue 5, eigenvector e1.
        let mut coo = Coo::<f32>::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 5.0).unwrap();
        coo.push(2, 2, 3.0).unwrap();
        let (lambda, v, iters) = power_iteration(
            &Csr::from(&coo),
            SolveOptions {
                tolerance: 1e-10,
                max_iterations: 1000,
            },
        )
        .unwrap();
        assert!((lambda - 5.0).abs() < 1e-6, "lambda {lambda}");
        assert!(v[1].abs() > 0.999, "eigenvector {v:?}");
        assert!(iters > 1);
    }

    #[test]
    fn power_iteration_on_laplacian_is_bounded_by_gershgorin() {
        let a = Csr::from(&laplacian_2d(8, 8));
        let (lambda, _, _) = power_iteration(
            &a,
            SolveOptions {
                tolerance: 1e-9,
                max_iterations: 20_000,
            },
        )
        .unwrap();
        // 5-point Laplacian eigenvalues live in (0, 8).
        assert!(lambda > 4.0 && lambda < 8.0, "lambda {lambda}");
    }

    #[test]
    fn zero_diagonal_is_rejected() {
        let mut coo = Coo::<f32>::new(3, 3);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        coo.push(2, 2, 1.0).unwrap();
        let a = Csr::from(&coo);
        let b = vec![1.0; 3];
        assert!(matches!(
            jacobi(&a, &b, SolveOptions::default()),
            Err(SolverError::Precondition(_))
        ));
        assert!(matches!(
            gauss_seidel(&a, &b, SolveOptions::default()),
            Err(SolverError::Precondition(_))
        ));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let (a, _) = poisson();
        let b = vec![1.0; 3];
        assert!(matches!(
            conjugate_gradient(&a, &b, SolveOptions::default()),
            Err(SolverError::Shape(_))
        ));
    }

    #[test]
    fn iteration_budget_is_honored() {
        let (a, b) = poisson();
        let opts = SolveOptions {
            tolerance: 1e-30,
            max_iterations: 2,
        };
        assert!(matches!(
            conjugate_gradient(&a, &b, opts),
            Err(SolverError::NoConvergence { iterations: 2, .. })
        ));
    }
}
