//! The sparse application kernels Copernicus motivates (§3.3 of the
//! paper): "this section shows that sparse matrix-vector multiplication
//! (SpMV) is the key sparse kernel in all of the three aforementioned
//! domains of sparse problems."
//!
//! * [`linear`] — iterative solvers for `A·x = b` (conjugate gradient,
//!   BiCGSTAB, Jacobi, Gauss–Seidel) — the scientific-computation domain.
//! * [`graph`] — PageRank, BFS levels and connected components expressed
//!   as repeated SpMV over semiring-flavored operands — the
//!   graph-analytics domain.
//! * [`nn`] — sparse fully-connected inference (pruned weight matrices ×
//!   activations) — the machine-learning domain.
//!
//! Every kernel is generic over the [`sparsemat::Matrix`] trait, so the
//! same solver runs on CSR, DIA, COO or any other format — which is
//! exactly the experiment the paper's platform performs in hardware.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod graph;
pub mod linear;
pub mod nn;

pub use graph::{bfs_levels, connected_components, pagerank, PageRankConfig};
pub use linear::{
    bicgstab, conjugate_gradient, gauss_seidel, jacobi, power_iteration, preconditioned_cg,
    IterStats, SolveOptions,
};
pub use nn::{relu, sparse_mlp_forward, SparseLayer};

/// Errors produced by the application kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolverError {
    /// Operand shapes disagree.
    Shape(sparsemat::SparseError),
    /// The method did not converge within the iteration budget.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
    },
    /// The method hit a numerical breakdown (zero denominator).
    Breakdown(&'static str),
    /// The matrix violates a method precondition (e.g. a zero diagonal
    /// entry for Jacobi/Gauss–Seidel).
    Precondition(&'static str),
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::Shape(e) => write!(f, "shape error: {e}"),
            SolverError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            SolverError::Breakdown(what) => write!(f, "numerical breakdown: {what}"),
            SolverError::Precondition(what) => write!(f, "precondition violated: {what}"),
        }
    }
}

impl std::error::Error for SolverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolverError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sparsemat::SparseError> for SolverError {
    fn from(e: sparsemat::SparseError) -> Self {
        SolverError::Shape(e)
    }
}
